(* A walkthrough of the LeafColoring machinery on a Figure-4-style
   instance: node statuses (Definition 3.3), the pseudo-forest G_T
   (Observation 3.7), a hand-checked solution, and what happens on the
   hard distribution of Proposition 3.12.

   Run with: dune exec examples/leafcoloring_walkthrough.exe *)

module Graph = Vc_graph.Graph
module TL = Vc_graph.Tree_labels
module Probe = Vc_model.Probe
module Lcl = Vc_lcl.Lcl
module LC = Volcomp.Leaf_coloring

let () =
  let inst = LC.figure4_instance in
  let g = inst.LC.graph in
  Fmt.pr "Figure-4-style instance with %d nodes:@." (Graph.n g);
  Graph.iter_nodes g (fun v ->
      Fmt.pr "  node %2d: input [%a]  status %a@." v LC.pp_node_input (LC.input inst v)
        TL.pp_status
        (TL.status g inst.LC.labels v));

  (* The pseudo-forest structure. *)
  Fmt.pr "@.G_T edges (internal parent -> children):@.";
  Graph.iter_nodes g (fun v ->
      match TL.gt_children g inst.LC.labels v with
      | Some (l, r) -> Fmt.pr "  %d -> %d, %d@." v l r
      | None -> ());

  (* Solve and display. *)
  let world = LC.world inst in
  let out =
    Array.init (Graph.n g) (fun v ->
        match (Probe.run ~world ~origin:v LC.solve_distance.Lcl.solve).Probe.output with
        | Some c -> c
        | None -> assert false)
  in
  Fmt.pr "@.deterministic solution:@.";
  Graph.iter_nodes g (fun v -> Fmt.pr "  node %2d -> %a@." v TL.pp_color out.(v));
  (match Lcl.check LC.problem g ~input:(LC.input inst) ~output:(fun v -> out.(v)) with
  | Ok () -> Fmt.pr "checker: VALID@."
  | Error vs -> Fmt.pr "checker: INVALID (%d violations)@." (List.length vs));

  (* Record one node's probe transcript and render the ball it saw:
     filled nodes were admitted into the view cache, thick edges were
     traversed by probes. *)
  let origin = 0 in
  let sink = Vc_obs.Trace.ring () in
  ignore
    (Probe.run ~world ~trace:sink ~origin LC.solve_distance.Lcl.solve
      : _ Probe.result);
  let ball = Vc_graph.Dot.trace_ball (Vc_obs.Trace.events sink) in
  Fmt.pr "@.probed ball of node %d (%d events recorded):@." origin
    (List.length (Vc_obs.Trace.events sink));
  Graph.iter_nodes g (fun v -> if ball.Vc_graph.Dot.in_ball v then Fmt.pr "  visited %d@." v);
  let path = "leafcoloring_ball.dot" in
  Vc_graph.Dot.to_file ~path ~name:"leafcoloring-ball"
    ~node_label:(fun v -> Fmt.str "%a" TL.pp_color out.(v))
    ~highlight:ball.Vc_graph.Dot.in_ball ~highlight_edge:ball.Vc_graph.Dot.probed_edge g;
  Fmt.pr "wrote %s (render with: dot -Tpng %s)@." path path;

  (* Proposition 3.12: a distance-limited algorithm at the root of a
     complete tree cannot know the leaf color. *)
  Fmt.pr "@.Prop 3.12 on a depth-8 complete tree:@.";
  List.iter
    (fun leaf_color ->
      let hard = LC.hard_distance_instance ~depth:8 ~leaf_color in
      let world = LC.world hard in
      let truncated =
        Probe.run ~world ~budget:(Probe.distance_budget 7) ~origin:0
          LC.solve_distance.Lcl.solve
      in
      let full = Probe.run ~world ~origin:0 LC.solve_distance.Lcl.solve in
      Fmt.pr "  leaves %a: truncated-at-7 output %a; full solver output %a@." TL.pp_color
        leaf_color
        Fmt.(option ~none:(any "ABORTED (outputs arbitrarily)") TL.pp_color)
        truncated.Probe.output
        Fmt.(option TL.pp_color)
        full.Probe.output)
    [ TL.Red; TL.Blue ]
