lib/core/cycle_coloring.mli: Vc_graph Vc_lcl Vc_model
