module Json = Vc_obs.Json
module Trace = Vc_obs.Trace
module Registry = Vc_check.Registry
module Runner = Vc_measure.Runner

type query =
  | Solve of { problem : string; size : int; seed : int64 }
  | Probe of { problem : string; size : int; seed : int64; origin : int }
  | Trace of { problem : string; size : int; seed : int64; origin : int }
  | Warm of { problem : string; size : int; seed : int64 }
  | List
  | Stats
  | Shutdown

type request = { id : int; deadline_ms : int option; query : query }

let kind = function
  | Solve _ -> "solve"
  | Probe _ -> "probe"
  | Trace _ -> "trace"
  | Warm _ -> "warm"
  | List -> "list"
  | Stats -> "stats"
  | Shutdown -> "shutdown"

type error_code =
  | Bad_request
  | Unknown_problem
  | Bad_origin
  | Deadline_exceeded
  | Overloaded
  | Worker_lost
  | Server_error

let code_to_string = function
  | Bad_request -> "bad_request"
  | Unknown_problem -> "unknown_problem"
  | Bad_origin -> "bad_origin"
  | Deadline_exceeded -> "deadline_exceeded"
  | Overloaded -> "overloaded"
  | Worker_lost -> "worker_lost"
  | Server_error -> "server_error"

let code_of_string = function
  | "bad_request" -> Some Bad_request
  | "unknown_problem" -> Some Unknown_problem
  | "bad_origin" -> Some Bad_origin
  | "deadline_exceeded" -> Some Deadline_exceeded
  | "overloaded" -> Some Overloaded
  | "worker_lost" -> Some Worker_lost
  | "server_error" -> Some Server_error
  | _ -> None

(* --- request codec ---------------------------------------------------------- *)

let request_to_json { id; deadline_ms; query } =
  let base = [ ("id", Json.Int id); ("kind", Json.String (kind query)) ] in
  let instance ~problem ~size ~seed rest =
    [
      ("problem", Json.String problem);
      ("size", Json.Int size);
      ("seed", Json.String (Int64.to_string seed));
    ]
    @ rest
  in
  let fields =
    match query with
    | Solve { problem; size; seed } | Warm { problem; size; seed } ->
        instance ~problem ~size ~seed []
    | Probe { problem; size; seed; origin } | Trace { problem; size; seed; origin } ->
        instance ~problem ~size ~seed [ ("origin", Json.Int origin) ]
    | List | Stats | Shutdown -> []
  in
  let deadline =
    match deadline_ms with None -> [] | Some d -> [ ("deadline_ms", Json.Int d) ]
  in
  Json.Obj (base @ fields @ deadline)

let request_of_json v =
  let int key = Option.bind (Json.member v key) Json.to_int in
  let str key = Option.bind (Json.member v key) Json.to_str in
  let require what = function Some x -> Ok x | None -> Error ("missing or ill-typed " ^ what) in
  let ( let* ) = Result.bind in
  let* id = require "\"id\"" (int "id") in
  if id < 0 then Error "\"id\" must be non-negative"
  else
    let* k = require "\"kind\"" (str "kind") in
    let deadline_ms = int "deadline_ms" in
    let* () =
      match (Json.member v "deadline_ms", deadline_ms) with
      | Some _, None -> Error "ill-typed \"deadline_ms\""
      | Some _, Some d when d < 0 -> Error "\"deadline_ms\" must be non-negative"
      | _ -> Ok ()
    in
    let instance () =
      let* problem = require "\"problem\"" (str "problem") in
      let* size = require "\"size\"" (int "size") in
      let* seed_s = require "\"seed\"" (str "seed") in
      match Int64.of_string_opt seed_s with
      | None -> Error "\"seed\" is not a decimal int64"
      | Some seed -> Ok (problem, size, seed)
    in
    let* query =
      match k with
      | "solve" ->
          let* problem, size, seed = instance () in
          Ok (Solve { problem; size; seed })
      | "warm" ->
          let* problem, size, seed = instance () in
          Ok (Warm { problem; size; seed })
      | "probe" | "trace" ->
          let* problem, size, seed = instance () in
          let* origin = require "\"origin\"" (int "origin") in
          Ok
            (if k = "probe" then Probe { problem; size; seed; origin }
             else Trace { problem; size; seed; origin })
      | "list" -> Ok List
      | "stats" -> Ok Stats
      | "shutdown" -> Ok Shutdown
      | k -> Error (Printf.sprintf "unknown request kind %S" k)
    in
    Ok { id; deadline_ms; query }

(* --- reply codec ------------------------------------------------------------ *)

let ok_reply ~id payload = Json.Obj [ ("id", Json.Int id); ("ok", payload) ]

let error_reply ~id ~code ~message =
  Json.Obj
    [
      ("id", Json.Int id);
      ( "error",
        Json.Obj
          [ ("code", Json.String (code_to_string code)); ("message", Json.String message) ] );
    ]

type reply = { r_id : int; body : (Json.t, error_code * string) result }

let reply_of_json v =
  match Option.bind (Json.member v "id") Json.to_int with
  | None -> Error "reply is missing \"id\""
  | Some r_id -> (
      match (Json.member v "ok", Json.member v "error") with
      | Some payload, None -> Ok { r_id; body = Ok payload }
      | None, Some err -> (
          let code = Option.bind (Option.bind (Json.member err "code") Json.to_str) code_of_string in
          let message = Option.bind (Json.member err "message") Json.to_str in
          match (code, message) with
          | Some c, Some m -> Ok { r_id; body = Error (c, m) }
          | _ -> Error "reply \"error\" is missing code/message")
      | _ -> Error "reply must have exactly one of \"ok\"/\"error\"")

(* --- framing ---------------------------------------------------------------- *)

let max_frame_bytes = 16 * 1024 * 1024

let frame body = Printf.sprintf "%d %s\n" (String.length body) body

(* The pending input lives in one Buffer; [consumed] bytes of its front
   have already been handed out.  Compaction happens when the buffer is
   fully drained, so steady-state request streams never copy. *)
type decoder = { mutable pending : Buffer.t; mutable consumed : int }

let decoder () = { pending = Buffer.create 512; consumed = 0 }

let feed d buf len = Buffer.add_subbytes d.pending buf 0 len

let next_frame d =
  let s = Buffer.contents d.pending in
  let avail = String.length s - d.consumed in
  if avail = 0 then begin
    Buffer.clear d.pending;
    d.consumed <- 0;
    Ok None
  end
  else begin
    let base = d.consumed in
    (* parse "<digits> " *)
    let rec scan i =
      if i - base > 10 then Error "frame length prefix too long"
      else if i >= String.length s then Ok None
      else
        match s.[i] with
        | '0' .. '9' -> scan (i + 1)
        | ' ' when i > base -> Ok (Some i)
        | c -> Error (Printf.sprintf "invalid frame prefix character %C" c)
    in
    match scan base with
    | Error _ as e -> e
    | Ok None -> Ok None
    | Ok (Some sp) -> (
        match int_of_string_opt (String.sub s base (sp - base)) with
        | None -> Error "invalid frame length"
        | Some len when len > max_frame_bytes ->
            Error (Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" len max_frame_bytes)
        | Some len ->
            let body_start = sp + 1 in
            if String.length s < body_start + len + 1 then Ok None
            else if s.[body_start + len] <> '\n' then Error "frame body not newline-terminated"
            else begin
              let body = String.sub s body_start len in
              d.consumed <- body_start + len + 1;
              if d.consumed = String.length s then begin
                Buffer.clear d.pending;
                d.consumed <- 0
              end;
              Ok (Some body)
            end)
  end

(* --- result payloads -------------------------------------------------------- *)

let stats_json (st : Runner.stats) =
  Json.Obj
    [
      ("runs", Json.Int st.Runner.runs);
      ("max_volume", Json.Int st.Runner.max_volume);
      ("sum_volume", Json.Int st.Runner.sum_volume);
      ("max_distance", Json.Int st.Runner.max_distance);
      ("sum_distance", Json.Int st.Runner.sum_distance);
      ("max_queries", Json.Int st.Runner.max_queries);
      ("max_rand_bits", Json.Int st.Runner.max_rand_bits);
      ("aborted", Json.Int st.Runner.aborted);
    ]

let solve_payload ~problem ~n outcomes =
  Json.Obj
    [
      ("problem", Json.String problem);
      ("n", Json.Int n);
      ( "solvers",
        Json.List
          (List.map
             (fun (o : Registry.solver_outcome) ->
               Json.Obj
                 [
                   ("name", Json.String o.Registry.solver);
                   ("randomized", Json.Bool o.Registry.randomized);
                   ("valid", Json.Bool o.Registry.valid);
                   ("stats", stats_json o.Registry.stats);
                 ])
             outcomes) );
    ]

let summary_fields (p : Registry.probe_summary) =
  [
    ("solver", Json.String p.Registry.pr_solver);
    ("volume", Json.Int p.Registry.pr_volume);
    ("distance", Json.Int p.Registry.pr_distance);
    ("queries", Json.Int p.Registry.pr_queries);
    ("rand_bits", Json.Int p.Registry.pr_rand_bits);
    ("aborted", Json.Bool p.Registry.pr_aborted);
    ("output_digest", Json.Int p.Registry.pr_output);
  ]

let probe_payload ~problem ~origin summary =
  Json.Obj
    (("problem", Json.String problem) :: ("origin", Json.Int origin) :: summary_fields summary)

let trace_payload ~problem ~origin summary events =
  Json.Obj
    (("problem", Json.String problem)
    :: ("origin", Json.Int origin)
    :: summary_fields summary
    @ [ ("events", Json.List (List.map Trace.event_to_json events)) ])

let warm_payload ~problem ~size ~n ~source =
  Json.Obj
    [
      ("problem", Json.String problem);
      ("size", Json.Int size);
      ("n", Json.Int n);
      ("source", Json.String source);
    ]

let list_payload entries =
  Json.Obj
    [
      ( "problems",
        Json.List
          (List.map
             (fun (e : Registry.entry) ->
               Json.Obj
                 [
                   ("name", Json.String e.Registry.name);
                   ("family", Json.String e.Registry.family);
                   ( "radius",
                     if e.Registry.radius = max_int then Json.String "unbounded"
                     else Json.Int e.Registry.radius );
                   ("sizes", Json.List (List.map (fun s -> Json.Int s) e.Registry.sizes));
                   ( "quick_sizes",
                     Json.List (List.map (fun s -> Json.Int s) e.Registry.quick_sizes) );
                   ("ir", Json.Bool e.Registry.ir);
                 ])
             entries) );
    ]
