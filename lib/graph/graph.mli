(** Bounded-degree port-numbered graphs (paper Section 2.1).

    A graph is a set of nodes [0 .. n-1], each carrying a unique
    identifier, with a port-numbered adjacency structure: node [v]'s
    incident edges are numbered [1 .. degree v], and [neighbor g v p] is
    "[v]'s [p]-th neighbor".  Port numberings on the two endpoints of an
    edge are independent, exactly as in the paper's model.

    Values of type {!t} are immutable once created and are validated at
    construction time: adjacency must be symmetric, self-loops and
    parallel edges are rejected, and identifiers must be distinct. *)

type node = int
(** Dense node index in [0 .. n-1]. *)

type port = int
(** 1-based port number; [p] is valid at [v] iff [1 <= p <= degree v]. *)

type t

val create : ids:int array -> adj:node array array -> t
(** [create ~ids ~adj] builds a graph with [Array.length ids] nodes where
    [adj.(v)] lists [v]'s neighbors in port order ([adj.(v).(p-1)] is the
    neighbor on port [p]).
    @raise Invalid_argument if the adjacency is not symmetric, contains a
    self-loop or a parallel edge, or if identifiers are not distinct. *)

val of_edges : ?ids:int array -> n:int -> (node * node) list -> t
(** [of_edges ~n edges] assigns ports in the order edges are listed: for
    each endpoint, its next free port.  Identifiers default to
    [v + 1]. *)

val n : t -> int
(** Number of nodes. *)

val max_degree : t -> int
(** The maximum degree Δ of the graph (0 for an empty graph). *)

val degree : t -> node -> int

val id : t -> node -> int
(** The unique identifier of a node. *)

val node_of_id : t -> int -> node option
(** Inverse of {!id}. *)

val neighbor : t -> node -> port -> node
(** [neighbor g v p] is the node reached from [v] via port [p].
    @raise Invalid_argument if [p] is not a valid port at [v]. *)

val unsafe_neighbor : t -> node -> port -> node
(** {!neighbor} without the port check: the caller must have already
    established [1 <= p <= degree g v], or the read is out of bounds.
    For validated hot loops (the batched IR executor) only. *)

val csr_offsets : t -> Iarr.t
(** The physical CSR offset row: node [v]'s neighbors live at indices
    [csr_offsets g].{v} .. [csr_offsets g].{v+1} - 1 of {!csr_targets}.
    Shared, not a copy — callers must treat it as read-only.  For tight
    scan loops (the IR executor's BFS oracle) that would otherwise
    re-read the offset per neighbor through {!unsafe_neighbor}. *)

val csr_targets : t -> Iarr.t
(** The physical CSR target row paired with {!csr_offsets}.  Shared, not
    a copy — read-only. *)

val csr_ids : t -> Iarr.t
(** The physical identifier row ([id g v = (csr_ids g).{v}]).  Shared,
    not a copy — read-only.  With {!csr_offsets} and {!csr_targets} this
    is the graph's complete snapshot payload. *)

val unsafe_of_csr : ids:Iarr.t -> off:Iarr.t -> tgt:Iarr.t -> max_degree:int -> t
(** Adopt pre-built CSR rows — typically views into a checksummed,
    memory-mapped snapshot ([lib/snap]) — without any structural
    validation.  The caller vouches that the rows came from a graph
    {!create} once accepted; the arrays are shared, not copied, and must
    never be written afterwards.
    @raise Invalid_argument if [Iarr.length off <> Iarr.length ids + 1]. *)

val port_to : t -> node -> node -> port option
(** [port_to g v w] is the port of [v] leading to [w], if [v] and [w] are
    adjacent.  A scan of [v]'s port row — O(degree v), effectively O(1)
    on the bounded-degree graphs of the paper's model. *)

val neighbors : t -> node -> node array
(** All neighbors of [v], in port order.  The array is fresh. *)

val iter_neighbors : t -> node -> (node -> unit) -> unit
(** [iter_neighbors g v f] applies [f] to each neighbor of [v] in port
    order, without allocating.  This is the hot-path alternative to
    {!neighbors}. *)

val fold_neighbors : t -> node -> init:'a -> f:('a -> node -> 'a) -> 'a
(** Allocation-free fold over [v]'s neighbors in port order. *)

val edges : t -> (node * node) list
(** Undirected edge list with [fst <= snd], each edge once. *)

val nodes : t -> node list

val iter_nodes : t -> (node -> unit) -> unit

val fold_nodes : t -> init:'a -> f:('a -> node -> 'a) -> 'a

val is_connected : t -> bool

val relabel_ids : t -> ids:int array -> t
(** Same structure, new identifiers (still validated for
    distinctness). *)

val shuffle_ids : t -> rng:Vc_rng.Splitmix.t -> t
(** Random permutation of the identifier space [1 .. n], for experiments
    that must not depend on the default identifier order. *)

val pp : Format.formatter -> t -> unit
(** Debug printer: one line per node with id, degree and port map. *)
