lib/model/congest.ml: Array List Option Vc_graph
