(* Tests for the splittable PRNG and per-node random streams. *)

module Splitmix = Vc_rng.Splitmix
module Stream = Vc_rng.Stream
module Randomness = Vc_rng.Randomness

let test_determinism () =
  let g1 = Splitmix.create 42L and g2 = Splitmix.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same sequence" (Splitmix.next g1) (Splitmix.next g2)
  done

let test_distinct_seeds () =
  let g1 = Splitmix.create 1L and g2 = Splitmix.create 2L in
  let a = List.init 8 (fun _ -> Splitmix.next g1) in
  let b = List.init 8 (fun _ -> Splitmix.next g2) in
  Alcotest.(check bool) "different sequences" true (a <> b)

let test_split_independent_of_use () =
  let g = Splitmix.create 7L in
  let child_before = Splitmix.split g ~key:5L in
  let _ = Splitmix.next g in
  let child_after = Splitmix.split g ~key:5L in
  Alcotest.(check int64) "split keyed on seed, not state" (Splitmix.next child_before)
    (Splitmix.next child_after)

let test_split_distinct_keys () =
  let g = Splitmix.create 7L in
  let a = Splitmix.next (Splitmix.split g ~key:1L) in
  let b = Splitmix.next (Splitmix.split g ~key:2L) in
  Alcotest.(check bool) "distinct key streams differ" true (a <> b)

let test_int_bounds () =
  let g = Splitmix.create 3L in
  for _ = 1 to 1000 do
    let v = Splitmix.int g ~bound:17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_int_rejects_nonpositive () =
  let g = Splitmix.create 3L in
  Alcotest.check_raises "bound 0" (Invalid_argument "Splitmix.int: bound must be positive")
    (fun () -> ignore (Splitmix.int g ~bound:0))

let test_float_range () =
  let g = Splitmix.create 4L in
  for _ = 1 to 1000 do
    let f = Splitmix.float g in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_int_roughly_uniform () =
  let g = Splitmix.create 9L in
  let counts = Array.make 4 0 in
  let trials = 40_000 in
  for _ = 1 to trials do
    let v = Splitmix.int g ~bound:4 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      let expected = trials / 4 in
      Alcotest.(check bool) "within 5% of uniform" true (abs (c - expected) < expected / 20))
    counts

let test_stream_memoized () =
  let s = Stream.of_seed 11L in
  let b5 = Stream.bit s 5 in
  let b5' = Stream.bit s 5 in
  Alcotest.(check bool) "memoized bit" b5 b5';
  Alcotest.(check int) "bits consumed counts materialization" 6 (Stream.bits_consumed s)

let test_stream_sequential () =
  let s = Stream.of_seed 12L in
  let a = List.init 20 (fun _ -> Stream.next_bit s) in
  Stream.reset_cursor s;
  let b = List.init 20 (fun _ -> Stream.next_bit s) in
  Alcotest.(check (list bool)) "cursor reset replays" a b

let test_stream_same_seed_same_bits () =
  let s1 = Stream.of_seed 13L and s2 = Stream.of_seed 13L in
  for i = 0 to 63 do
    Alcotest.(check bool) "same bit" (Stream.bit s1 i) (Stream.bit s2 i)
  done

let test_randomness_private_streams_differ () =
  let r = Randomness.create ~seed:5L ~n:4 () in
  let bits v = List.init 32 (fun i -> Stream.bit (Randomness.stream r v) i) in
  Alcotest.(check bool) "node 0 and 1 differ" true (bits 0 <> bits 1)

let test_randomness_public_is_shared () =
  let r = Randomness.create ~regime:Randomness.Public ~seed:5L ~n:4 () in
  Alcotest.(check bool) "same stream object" true (Randomness.stream r 0 == Randomness.stream r 3)

let test_randomness_secret_visibility () =
  let r = Randomness.create ~regime:Randomness.Secret ~seed:5L ~n:4 () in
  Alcotest.(check bool) "own stream readable" true (Randomness.readable r ~origin:2 ~node:2);
  Alcotest.(check bool) "other stream hidden" false (Randomness.readable r ~origin:2 ~node:3)

let test_randomness_bit_accounting () =
  let r = Randomness.create ~seed:5L ~n:4 () in
  ignore (Stream.bit (Randomness.stream r 1) 9);
  ignore (Stream.bit (Randomness.stream r 2) 4);
  Alcotest.(check int) "total bits" 15 (Randomness.total_bits_consumed r)

let test_randomness_reseed () =
  let r = Randomness.create ~seed:5L ~n:4 () in
  let r' = Randomness.reseed r 6L in
  let bits t = List.init 32 (fun i -> Stream.bit (Randomness.stream t 0) i) in
  Alcotest.(check bool) "reseeded stream differs" true (bits r <> bits r')

let prop_mix_injective_on_sample =
  QCheck.Test.make ~name:"splitmix mix has no collisions on random sample" ~count:500
    QCheck.(pair int64 int64)
    (fun (a, b) -> a = b || Splitmix.mix a <> Splitmix.mix b)

let prop_stream_bits_stable =
  QCheck.Test.make ~name:"stream bits stable under access order" ~count:200
    QCheck.(pair int64 (small_list (int_bound 200)))
    (fun (seed, indices) ->
      let s1 = Stream.of_seed seed and s2 = Stream.of_seed seed in
      let via_order = List.map (fun i -> Stream.bit s1 i) indices in
      let via_reverse = List.rev_map (fun i -> Stream.bit s2 i) (List.rev indices) in
      via_order = via_reverse)

let suites =
  [
    ( "rng:splitmix",
      [
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "distinct seeds" `Quick test_distinct_seeds;
        Alcotest.test_case "split independent of use" `Quick test_split_independent_of_use;
        Alcotest.test_case "split distinct keys" `Quick test_split_distinct_keys;
        Alcotest.test_case "int bounds" `Quick test_int_bounds;
        Alcotest.test_case "int rejects nonpositive" `Quick test_int_rejects_nonpositive;
        Alcotest.test_case "float range" `Quick test_float_range;
        Alcotest.test_case "int roughly uniform" `Slow test_int_roughly_uniform;
        QCheck_alcotest.to_alcotest prop_mix_injective_on_sample;
      ] );
    ( "rng:stream",
      [
        Alcotest.test_case "memoized" `Quick test_stream_memoized;
        Alcotest.test_case "sequential cursor" `Quick test_stream_sequential;
        Alcotest.test_case "same seed same bits" `Quick test_stream_same_seed_same_bits;
        QCheck_alcotest.to_alcotest prop_stream_bits_stable;
      ] );
    ( "rng:randomness",
      [
        Alcotest.test_case "private streams differ" `Quick test_randomness_private_streams_differ;
        Alcotest.test_case "public is shared" `Quick test_randomness_public_is_shared;
        Alcotest.test_case "secret visibility" `Quick test_randomness_secret_visibility;
        Alcotest.test_case "bit accounting" `Quick test_randomness_bit_accounting;
        Alcotest.test_case "reseed" `Quick test_randomness_reseed;
      ] );
  ]
