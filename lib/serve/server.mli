(** The serving daemon's event loop: accept, frame, batch, dispatch,
    reply.

    One [select]-driven loop owns every connection.  Each cycle it
    drains readable sockets into per-connection frame {!Protocol.decoder}s,
    enqueues complete requests (shedding with an [overloaded] error once
    the bounded queue is full — a structured reply, never a hang or a
    crash), then dispatches the queued batch: requests whose deadline
    expired while queued get a [deadline_exceeded] error; the rest are
    {!Handler.prepare}d on the loop's domain and their thunks fanned out
    over the optional {!Vc_exec.Pool} ({e request batching}: independent
    requests that arrive together are computed in parallel, replies are
    written in arrival order).  A handler exception becomes a
    [server_error] reply for that request only.

    Deadlines are checked at dispatch, not mid-computation — a running
    request is never preempted; [deadline_ms = 0] therefore expires
    deterministically (useful for testing).  Latency is measured from
    frame completion to reply write and recorded per request kind via
    {!Handler.observe_latency}.

    The loop exits after replying to a [shutdown] request, closing every
    connection and the listening socket.  A connection that sends an
    unrecoverably malformed byte stream is answered with one
    [bad_request] error and closed; malformed JSON on a well-formed
    frame only fails that frame. *)

val listen_unix : path:string -> Unix.file_descr
(** Bind and listen on a Unix-domain socket, replacing a stale socket
    file at [path] if one exists.  The caller unlinks [path] when done. *)

val listen_tcp : port:int -> Unix.file_descr
(** Bind and listen on [127.0.0.1:port] (with [SO_REUSEADDR]). *)

val run :
  handler:Handler.t ->
  ?pool:Vc_exec.Pool.t ->
  ?queue_depth:int ->
  listen:Unix.file_descr ->
  unit ->
  int
(** Serve until shutdown; returns the number of requests answered
    (including error replies).  [queue_depth] (default 64) bounds the
    number of accepted-but-undispatched requests; arrivals beyond it are
    shed.  Closes [listen] before returning. *)

val run_conn :
  handler:Handler.t ->
  ?pool:Vc_exec.Pool.t ->
  ?queue_depth:int ->
  fd:Unix.file_descr ->
  unit ->
  int
(** Worker mode: the same loop over exactly one pre-established,
    bidirectional connection (a supervisor's socketpair end) and no
    listening socket.  Returns when the peer closes the connection or
    after replying to [shutdown]; closes [fd].  Frame, deadline, queue
    and batching semantics are identical to {!run} — which is what keeps
    sharded replies byte-identical to single-process ones. *)
