(** Wire protocol of the query-serving daemon.

    {b Framing.}  One frame per request or reply: the decimal byte
    length of the JSON body, one space, the body, one ['\n'] —
    length-prefixed so a reader never scans untrusted bytes for a
    delimiter, newline-terminated so transcripts stay greppable.  Frames
    above {!max_frame_bytes} are a protocol error.

    {b Requests} are one JSON object:
    [{"id":N,"kind":K,…,"deadline_ms":D?}] where [K] is one of [solve],
    [probe], [trace], [list], [stats], [shutdown].  The instance-backed
    kinds carry [problem] (registry name, matched case-insensitively),
    [size] and [seed] (the trial seed, a decimal string since it spans
    the full int64 range); [probe] and [trace] add [origin].  The
    optional [deadline_ms] is relative to server receipt; [0] means
    "already expired" (useful for testing the deadline path).

    {b Replies} echo the id: [{"id":N,"ok":P}] on success, or
    [{"id":N,"error":{"code":C,"message":M}}] — where [C] is a stable
    machine-readable {!error_code} string — on any failure, including
    overload shedding and expired deadlines.  A server never answers a
    well-framed request with silence or a closed socket.

    The payload builders at the bottom are the {e single} encoders for
    [solve]/[probe]/[trace]/[list] results: the server, the in-process
    conformance probe and the loadgen differential check all call the
    same functions, which is what makes byte-identical comparison
    meaningful. *)

module Json = Vc_obs.Json
module Registry = Vc_check.Registry

type query =
  | Solve of { problem : string; size : int; seed : int64 }
      (** run every registered solver from every node, like a direct
          [Runner.solve_and_check] sweep *)
  | Probe of { problem : string; size : int; seed : int64; origin : int }
      (** one reference-solver run from one origin *)
  | Trace of { problem : string; size : int; seed : int64; origin : int }
      (** like [Probe] but the reply carries the full event transcript *)
  | Warm of { problem : string; size : int; seed : int64 }
      (** build (or touch) the resident instance without computing
          anything — the supervisor's session re-warm path after a
          worker respawn *)
  | List  (** the problem registry *)
  | Stats  (** server counters, latency histograms, cache occupancy *)
  | Shutdown  (** acknowledge, finish the batch, exit cleanly *)

type request = { id : int; deadline_ms : int option; query : query }

val kind : query -> string
(** ["solve"], ["probe"], ["trace"], ["warm"], ["list"], ["stats"],
    ["shutdown"]. *)

type error_code =
  | Bad_request  (** malformed frame, JSON, or missing/ill-typed field *)
  | Unknown_problem
  | Bad_origin  (** origin outside the instance *)
  | Deadline_exceeded
  | Overloaded  (** shed: the bounded queue was full on arrival *)
  | Worker_lost
      (** the shard worker holding this in-flight request died; the
          supervisor respawned it — retry is safe and will hit the
          re-warmed session *)
  | Server_error  (** the handler raised; the server survives *)

val code_to_string : error_code -> string
val code_of_string : string -> error_code option

(** {1 Request and reply codecs} *)

val request_to_json : request -> Json.t
val request_of_json : Json.t -> (request, string) result

val ok_reply : id:int -> Json.t -> Json.t
val error_reply : id:int -> code:error_code -> message:string -> Json.t

type reply = { r_id : int; body : (Json.t, error_code * string) result }

val reply_of_json : Json.t -> (reply, string) result

(** {1 Framing} *)

val max_frame_bytes : int
(** Upper bound on a frame body (16 MiB) — backpressure against a
    malicious or broken peer. *)

val frame : string -> string
(** [frame body] is ["<length> <body>\n"]. *)

type decoder
(** Incremental frame reassembly over a byte stream. *)

val decoder : unit -> decoder

val feed : decoder -> bytes -> int -> unit
(** [feed d buf len] appends [buf[0..len)] to the pending input. *)

val next_frame : decoder -> (string option, string) result
(** The next complete frame body, [Ok None] when more input is needed,
    [Error] when the stream is unrecoverably malformed (bad prefix or
    oversized frame) — the connection should be dropped. *)

(** {1 Result payloads (shared by server, conformance probe and loadgen)} *)

val solve_payload : problem:string -> n:int -> Registry.solver_outcome list -> Json.t
val probe_payload : problem:string -> origin:int -> Registry.probe_summary -> Json.t
val trace_payload :
  problem:string -> origin:int -> Registry.probe_summary -> Vc_obs.Trace.event list -> Json.t
val warm_payload : problem:string -> size:int -> n:int -> source:string -> Json.t
(** [source] says where the resident instance came from: ["cache"] (it
    was already warm), ["build"] (constructed from scratch) or ["snap"]
    (loaded from a snapshot store). *)

val list_payload : Registry.entry list -> Json.t
