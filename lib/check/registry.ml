module Graph = Vc_graph.Graph
module Builder = Vc_graph.Builder
module TL = Vc_graph.Tree_labels
module Splitmix = Vc_rng.Splitmix
module Randomness = Vc_rng.Randomness
module World = Vc_model.World
module Probe = Vc_model.Probe
module Lcl = Vc_lcl.Lcl
module Runner = Vc_measure.Runner
module Pool = Vc_exec.Pool
module Trace = Vc_obs.Trace
module Ir = Vc_ir.Ir
module Ir_exec = Vc_ir.Exec
module Ir_lib = Vc_ir.Library
module TR = Volcomp.Trivial_lcl
module CC = Volcomp.Cycle_coloring
module SO = Volcomp.Sinkless
module LC = Volcomp.Leaf_coloring
module LCC = Volcomp.Leaf_coloring_congest
module PL = Volcomp.Promise_leaf
module BT = Volcomp.Balanced_tree
module BTC = Volcomp.Balanced_tree_congest
module H = Volcomp.Hierarchical_thc
module Hy = Volcomp.Hybrid_thc
module HH = Volcomp.Hh_thc
module Gap = Volcomp.Gap_example

type solver_outcome = {
  solver : string;
  randomized : bool;
  stats : Runner.stats;
  valid : bool;
}

type probe_summary = {
  pr_solver : string;
  pr_volume : int;
  pr_distance : int;
  pr_queries : int;
  pr_rand_bits : int;
  pr_aborted : bool;
  pr_output : int;
}

type trial = {
  t_n : int;
  run_solvers : ?pool:Pool.t -> unit -> solver_outcome list;
  probe_origin :
    ?trace:Vc_obs.Trace.sink -> origin:int -> unit -> (probe_summary, string) result;
  merge_consistency : widths:int list -> (unit, string) result;
  cross_model : (string * (unit -> (unit, string) result)) list;
  lazy_vs_eager : unit -> (unit, string) result;
  ir_vs_closure : (unit -> (unit, string) result) option;
  mutate : Splitmix.t -> Mutate.outcome list;
  trace_record : path:string -> header:Vc_obs.Json.t -> origin:int -> (unit, string) result;
  trace_replay : events:Trace.event list -> origin:int -> (unit, string) result;
  trace_roundtrip : unit -> (unit, string) result;
}

type entry = {
  name : string;
  radius : int;
  sizes : int list;
  quick_sizes : int list;
  ir : bool;
  make : size:int -> seed:int64 -> trial;
}

(* --- shared helpers ------------------------------------------------------ *)

let assemble outputs =
  let missing = Array.fold_left (fun c o -> if o = None then c + 1 else c) 0 outputs in
  if missing > 0 then Error (Fmt.str "%d of %d nodes undecided" missing (Array.length outputs))
  else Ok (Array.map (function Some o -> o | None -> assert false) outputs)

let first_violation = function
  | v :: _ -> Fmt.str "%a" Lcl.pp_violation v
  | [] -> "invalid (no violation record)"

let congest_check ~problem ~graph ~input (result : _ Vc_model.Congest.result) =
  match assemble result.Vc_model.Congest.outputs with
  | Error e -> Error ("congest: " ^ e)
  | Ok out -> (
      match Lcl.check problem graph ~input ~output:(fun v -> out.(v)) with
      | Ok () -> Ok ()
      | Error vs -> Error ("congest output invalid: " ^ first_violation vs))

let pick rng = function
  | [] -> None
  | xs -> Some (List.nth xs (Splitmix.int rng ~bound:(List.length xs)))

let nodes_where graph p = List.filter p (Graph.nodes graph)

(* A mutant that only touches the (already copied) output array. *)
let out_mutant site out = Some { Mutate.site; input = None; output = (fun v -> out.(v)) }

let any_node rng out = Splitmix.int rng ~bound:(Array.length out)

(* Package one concrete instance as a trial.  The reference output (the
   mutation fuzzer's starting point) is the first deterministic solver's,
   computed lazily once per trial; per-solver randomness is derived from
   the trial seed and the solver's position, so every probe is
   reproducible from the trial's (size, seed) alone. *)
let make_trial (type i o) ~(problem : (i, o) Lcl.t) ~graph ~(input : Graph.node -> i) ~world
    ~(solvers : (i, o) Lcl.solver list) ?(regime = Randomness.Private) ?(cross_model = []) ?ir
    ~(mutants : (string * (Splitmix.t -> o array -> (i, o) Mutate.t option)) list) ~seed () :
    trial =
  let n = Graph.n graph in
  let randomness_for idx (s : _ Lcl.solver) =
    if s.Lcl.randomized then
      Some (Randomness.create ~regime ~seed:(Int64.add seed (Int64.of_int (1 + idx))) ~n ())
    else None
  in
  let run_solvers ?pool () =
    List.mapi
      (fun idx s ->
        let stats, valid =
          Runner.solve_and_check ~world ~problem ~graph ~input ~solver:s
            ?randomness:(randomness_for idx s) ?pool ()
        in
        { solver = s.Lcl.solver_name; randomized = s.Lcl.randomized; stats; valid })
      solvers
  in
  let ref_solver =
    match List.find_opt (fun s -> not s.Lcl.randomized) solvers with
    | Some s -> s
    | None -> List.hd solvers
  in
  let merge_consistency ~widths =
    let run ?pool () =
      fst
        (Runner.solve_and_check ~world ~problem ~graph ~input ~solver:ref_solver
           ?randomness:(randomness_for 0 ref_solver) ?pool ())
    in
    let base = run () in
    List.fold_left
      (fun acc w ->
        match acc with
        | Error _ -> acc
        | Ok () ->
            let stats = Pool.with_pool ~domains:w (fun pool -> run ~pool ()) in
            if stats = base then Ok ()
            else
              Error
                (Fmt.str "%s: stats at pool width %d differ from sequential"
                   ref_solver.Lcl.solver_name w))
      (Ok ()) widths
  in
  let reference =
    lazy
      (let stats, outs =
         Runner.measure ~world ~solver:ref_solver ?randomness:(randomness_for 0 ref_solver)
           ~origins:(Graph.nodes graph) ()
       in
       if stats.Runner.aborted > 0 then Error "reference solver aborted"
       else
         let arr = Array.make n None in
         List.iter (fun (v, o) -> arr.(v) <- Some o) outs;
         match assemble arr with
         | Error e -> Error ("reference: " ^ e)
         | Ok out -> (
             match Lcl.check problem graph ~input ~output:(fun v -> out.(v)) with
             | Ok () -> Ok out
             | Error vs -> Error ("reference output invalid: " ^ first_violation vs)))
  in
  let mutate rng =
    match Lazy.force reference with
    | Error msg -> [ Mutate.reference_failure ~msg ]
    | Ok out ->
        List.filter_map
          (fun (kind, build) ->
            match build rng (Array.copy out) with
            | None -> None
            | Some m -> Some (Mutate.check ~problem ~graph ~input ~kind m))
          mutants
  in
  (* Differential probe: the lazy incremental-BFS world must be
     observationally identical to an eager full-BFS world — same output,
     volume, distance, queries, rand bits, abort flag — for every solver
     from every origin.  The eager twin claims the same [n] as the
     trial's world so budgets and [Probe.n] agree. *)
  let lazy_vs_eager () =
    let eager = World.of_graph_eager_claiming ~n:world.World.n graph ~input in
    let result = ref (Ok ()) in
    List.iteri
      (fun idx (s : _ Lcl.solver) ->
        if !result = Ok () then
          Graph.iter_nodes graph (fun origin ->
              if !result = Ok () then begin
                let probe w =
                  Probe.run ~world:w ?randomness:(randomness_for idx s) ~origin s.Lcl.solve
                in
                if probe world <> probe eager then
                  result :=
                    Error
                      (Fmt.str "%s: lazy and eager results diverge at origin %d"
                         s.Lcl.solver_name origin)
              end))
      solvers;
    !result
  in
  (* Probe 8: the IR port must reproduce the reference closure solver bit
     for bit — output and full cost envelope — from every origin, under
     the reference interpreter and the batched executor alike.  Budgeted
     passes pin down the abort envelope too: a truncated IR run must
     abort at exactly the same (volume, distance, queries) as the
     truncated closure. *)
  let ir_vs_closure =
    Option.map
      (fun (spec : (i, o) Ir.spec) () ->
        match Ir.validate_spec spec with
        | Error e -> Error ("program does not validate: " ^ e)
        | Ok () ->
            let origins = Array.init n (fun v -> v) in
            let check_budget acc budget =
              match acc with
              | Error _ -> acc
              | Ok () ->
                  let eff = Ir.effective_budget spec.Ir.program budget in
                  let batch =
                    Ir_exec.run_batch ~claimed_n:world.World.n ~budget spec ~graph ~input
                      ~origins
                  in
                  let result = ref (Ok ()) in
                  Array.iteri
                    (fun i origin ->
                      if !result = Ok () then begin
                        let closure =
                          Probe.run ~world ~budget:eff ~origin ref_solver.Lcl.solve
                        in
                        let interp = Ir_exec.run ~budget spec ~world ~origin in
                        if closure <> interp then
                          result :=
                            Error
                              (Fmt.str "interpreter diverges from %s at origin %d"
                                 ref_solver.Lcl.solver_name origin)
                        else if interp <> batch.(i) then
                          result :=
                            Error (Fmt.str "batched executor diverges at origin %d" origin)
                      end)
                    origins;
                  !result
            in
            List.fold_left check_budget (Ok ())
              [ Probe.unlimited; Probe.volume_budget 5; Probe.distance_budget 2 ])
      ir
  in
  (* Record/replay probes.  A fresh [Randomness] is built per run from
     the trial seed, so a recording run and its replay read identical
     random bits — the transcript must therefore match event for
     event. *)
  let reference_run ?trace origin =
    Probe.run ~world ?randomness:(randomness_for 0 ref_solver) ?trace ~origin
      ref_solver.Lcl.solve
  in
  (* One reference run from one origin, summarized — what the serving
     layer answers [probe] (and, with a ring sink, [trace]) requests
     with.  Deterministic: randomness derivation matches [run_solvers]. *)
  let probe_origin ?trace ~origin () =
    if origin < 0 || origin >= n then
      Error (Fmt.str "origin %d out of range (instance has %d nodes)" origin n)
    else
      let r = reference_run ?trace origin in
      Ok
        {
          pr_solver = ref_solver.Lcl.solver_name;
          pr_volume = r.Probe.volume;
          pr_distance = r.Probe.distance;
          pr_queries = r.Probe.queries;
          pr_rand_bits = r.Probe.rand_bits;
          pr_aborted = r.Probe.aborted;
          pr_output = Hashtbl.hash r.Probe.output;
        }
  in
  let trace_record ~path ~header ~origin =
    if origin < 0 || origin >= n then
      Error (Fmt.str "origin %d out of range (instance has %d nodes)" origin n)
    else begin
      let sink = Trace.to_file ~path ~header in
      Fun.protect
        ~finally:(fun () -> Trace.close sink)
        (fun () -> ignore (reference_run ~trace:sink origin : _ Probe.result));
      Ok ()
    end
  in
  let trace_replay ~events ~origin =
    if origin < 0 || origin >= n then
      Error (Fmt.str "origin %d out of range (instance has %d nodes)" origin n)
    else
      let sink = Trace.checking ~expect:events in
      match reference_run ~trace:sink origin with
      | (_ : _ Probe.result) -> Trace.checking_result sink
      | exception Trace.Replay_mismatch msg -> Error msg
  in
  (* Probe 6: for every solver from every origin, record a transcript,
     push every event through its JSONL encoding and back, then re-drive
     the run against the decoded transcript.  Both the event sequence and
     the final [Probe.result] must be bit-identical. *)
  let trace_roundtrip () =
    let result = ref (Ok ()) in
    List.iteri
      (fun idx (s : _ Lcl.solver) ->
        if !result = Ok () then
          Graph.iter_nodes graph (fun origin ->
              if !result = Ok () then begin
                let run ?trace () =
                  Probe.run ~world ?randomness:(randomness_for idx s) ?trace ~origin
                    s.Lcl.solve
                in
                let ring = Trace.ring () in
                let recorded = run ~trace:ring () in
                let decoded =
                  List.fold_left
                    (fun acc ev ->
                      match acc with
                      | Error _ -> acc
                      | Ok evs -> (
                          match Trace.event_of_json (Trace.event_to_json ev) with
                          | Ok ev' when Trace.equal_event ev ev' -> Ok (ev' :: evs)
                          | Ok _ ->
                              Error
                                (Fmt.str "%s: JSON round-trip altered {%a} at origin %d"
                                   s.Lcl.solver_name Trace.pp_event ev origin)
                          | Error msg ->
                              Error
                                (Fmt.str "%s: JSON round-trip failed at origin %d: %s"
                                   s.Lcl.solver_name origin msg)))
                    (Ok []) (Trace.events ring)
                in
                match decoded with
                | Error _ as e -> result := e
                | Ok rev_events -> (
                    let sink = Trace.checking ~expect:(List.rev rev_events) in
                    match run ~trace:sink () with
                    | exception Trace.Replay_mismatch msg ->
                        result :=
                          Error (Fmt.str "%s at origin %d: %s" s.Lcl.solver_name origin msg)
                    | replayed ->
                        if replayed <> recorded then
                          result :=
                            Error
                              (Fmt.str "%s: replayed result differs at origin %d"
                                 s.Lcl.solver_name origin)
                        else (
                          match Trace.checking_result sink with
                          | Ok () -> ()
                          | Error msg ->
                              result :=
                                Error
                                  (Fmt.str "%s at origin %d: %s" s.Lcl.solver_name origin msg)))
              end))
      solvers;
    !result
  in
  {
    t_n = n;
    run_solvers;
    probe_origin;
    merge_consistency;
    cross_model;
    lazy_vs_eager;
    ir_vs_closure;
    mutate;
    trace_record;
    trace_replay;
    trace_roundtrip;
  }

(* --- entries, in paper order --------------------------------------------- *)

let degree_parity =
  let problem = TR.problem in
  {
    name = problem.Lcl.name;
    radius = problem.Lcl.radius;
    sizes = [ 24; 40 ];
    quick_sizes = [ 16 ];
    ir = true;
    make =
      (fun ~size ~seed ->
        let graph = Gen.build { Gen.shape = Gen.Cubic; size; g_seed = seed } in
        let input _ = () in
        make_trial ~problem ~graph ~input ~world:(TR.world graph) ~solvers:TR.solvers
          ~ir:Ir_lib.degree_parity
          ~mutants:
            [
              ( "flip-parity",
                fun rng out ->
                  let v = any_node rng out in
                  out.(v) <- (match out.(v) with TR.Even -> TR.Odd | TR.Odd -> TR.Even);
                  out_mutant v out );
            ]
          ~seed ());
  }

let cycle_coloring =
  let problem = CC.problem in
  {
    name = problem.Lcl.name;
    radius = problem.Lcl.radius;
    sizes = [ 16; 33 ];
    quick_sizes = [ 9 ];
    ir = true;
    make =
      (fun ~size ~seed ->
        (* shuffled identifiers vary the Cole–Vishkin trajectory per seed *)
        let graph =
          Graph.shuffle_ids (Builder.cycle (max 3 size)) ~rng:(Splitmix.create seed)
        in
        let input _ = () in
        make_trial ~problem ~graph ~input ~world:(CC.world graph) ~solvers:CC.solvers
          ~ir:(Ir_lib.cycle_coloring ~n:(Graph.n graph))
          ~mutants:
            [
              ( "copy-neighbor",
                fun rng out ->
                  let v = any_node rng out in
                  out.(v) <- out.(Graph.neighbor graph v 1);
                  out_mutant v out );
              ( "out-of-palette",
                fun rng out ->
                  let v = any_node rng out in
                  out.(v) <- 3;
                  out_mutant v out );
            ]
          ~seed ());
  }

let sinkless =
  let problem = SO.problem in
  {
    name = problem.Lcl.name;
    radius = problem.Lcl.radius;
    sizes = [ 20; 32 ];
    quick_sizes = [ 12 ];
    ir = false;
    make =
      (fun ~size ~seed ->
        let graph = SO.random_cubic ~n:(max 8 size) ~seed in
        let input _ = () in
        let flip = function SO.Outgoing -> SO.Incoming | SO.Incoming -> SO.Outgoing in
        make_trial ~problem ~graph ~input ~world:(SO.world graph) ~solvers:SO.solvers
          ~mutants:
            [
              ( "swap-port",
                fun rng out ->
                  let v = any_node rng out in
                  let p = Splitmix.int rng ~bound:(Graph.degree graph v) in
                  (* replace, don't mutate: the inner array is shared with
                     the reference output *)
                  let a = Array.copy out.(v) in
                  a.(p) <- flip a.(p);
                  out.(v) <- a;
                  out_mutant v out );
              ( "make-sink",
                fun rng out ->
                  let v = any_node rng out in
                  out.(v) <- Array.make (Graph.degree graph v) SO.Incoming;
                  out_mutant v out );
            ]
          ~seed ());
  }

(* Mutation kinds shared by LeafColoring and its promise variant. *)
let lc_mutants inst =
  let graph = inst.LC.graph in
  let leaves =
    nodes_where graph (fun v -> TL.equal_status (TL.status graph inst.LC.labels v) TL.Leaf)
  in
  [
    ( "relabel-node",
      fun rng out ->
        let v = any_node rng out in
        out.(v) <- TL.flip_color out.(v);
        out_mutant v out );
    ( "recolor-leaf",
      fun rng out ->
        match pick rng leaves with
        | None -> None
        | Some v ->
            out.(v) <- TL.flip_color out.(v);
            out_mutant v out );
    ( "break-input-color",
      fun rng out ->
        match pick rng leaves with
        | None -> None
        | Some v ->
            let base = LC.input inst in
            let mutated u =
              if u = v then { (base u) with LC.color = TL.flip_color (base u).LC.color }
              else base u
            in
            Some { Mutate.site = v; input = Some mutated; output = (fun u -> out.(u)) } );
  ]

let leaf_coloring =
  let problem = LC.problem in
  {
    name = problem.Lcl.name;
    radius = problem.Lcl.radius;
    sizes = [ 31; 63 ];
    quick_sizes = [ 15 ];
    ir = true;
    make =
      (fun ~size ~seed ->
        let inst = LC.random_instance ~n:size ~seed in
        let graph = inst.LC.graph in
        let input = LC.input inst in
        make_trial ~problem ~graph ~input ~world:(LC.world inst) ~solvers:LC.solvers
          ~cross_model:
            [ ("congest", fun () -> congest_check ~problem ~graph ~input (LCC.run inst ())) ]
          ~ir:Ir_lib.leaf_coloring ~mutants:(lc_mutants inst) ~seed ());
  }

let promise_leaf =
  let problem = LC.problem in
  {
    name = "PromiseLeafColoring (secret)";
    radius = problem.Lcl.radius;
    sizes = [ 31; 63 ];
    quick_sizes = [ 15 ];
    ir = true;
    make =
      (fun ~size ~seed ->
        let leaf_color = if Int64.logand seed 1L = 0L then TL.Red else TL.Blue in
        let inst = PL.promise_instance ~n:size ~leaf_color ~seed in
        let graph = inst.LC.graph in
        let input = LC.input inst in
        (* the promise entry's reference solver is [LC.solve_distance],
           exactly what the leaf-coloring program ports *)
        make_trial ~problem ~graph ~input ~world:(LC.world inst)
          ~solvers:(LC.solve_distance :: PL.solvers)
          ~regime:Randomness.Secret ~ir:Ir_lib.leaf_coloring ~mutants:(lc_mutants inst)
          ~seed ());
  }

let balanced_tree =
  let problem = BT.problem in
  {
    name = problem.Lcl.name;
    radius = problem.Lcl.radius;
    sizes = [ 3; 4 ];
    quick_sizes = [ 3 ];
    ir = false;
    make =
      (fun ~size ~seed ->
        let inst =
          if Int64.logand seed 1L = 1L then BT.broken_pair_instance ~depth:size ~break:0
          else BT.balanced_instance ~depth:size
        in
        let graph = inst.BT.graph in
        let input = BT.input inst in
        (* consistent nodes whose output is forced by Definition 4.3:
           every leaf, and every incompatible internal node *)
        let forced =
          nodes_where graph (fun v ->
              match BT.status inst v with
              | TL.Inconsistent -> false
              | TL.Leaf -> true
              | TL.Internal -> not (BT.compatible inst v))
        in
        let laterals =
          nodes_where graph (fun v -> inst.BT.labels.(v).BT.left_nbr <> TL.bot)
        in
        let flip = function BT.Bal -> BT.Unbal | BT.Unbal -> BT.Bal in
        make_trial ~problem ~graph ~input ~world:(BT.world inst) ~solvers:BT.solvers
          ~cross_model:
            [ ("congest", fun () -> congest_check ~problem ~graph ~input (BTC.run inst ())) ]
          ~mutants:
            [
              ( "flip-verdict",
                fun rng out ->
                  match pick rng forced with
                  | None -> None
                  | Some v ->
                      out.(v) <- { out.(v) with BT.verdict = flip out.(v).BT.verdict };
                      out_mutant v out );
              ( "swap-port",
                fun rng out ->
                  match pick rng forced with
                  | None -> None
                  | Some v ->
                      out.(v) <-
                        { out.(v) with BT.port = (if out.(v).BT.port = TL.bot then 1 else TL.bot) };
                      out_mutant v out );
              ( "erase-lateral",
                fun rng out ->
                  match pick rng laterals with
                  | None -> None
                  | Some v ->
                      let mutated u =
                        if u = v then { (input u) with BT.left_nbr = TL.bot } else input u
                      in
                      Some { Mutate.site = v; input = Some mutated; output = (fun u -> out.(u)) } );
            ]
          ~seed ());
  }

let hierarchical =
  let k = 2 in
  let problem = H.problem ~k in
  {
    name = problem.Lcl.name;
    radius = problem.Lcl.radius;
    sizes = [ 4; 5 ];
    quick_sizes = [ 3 ];
    ir = false;
    make =
      (fun ~size ~seed ->
        let inst = H.uniform_instance ~k ~len:size ~seed in
        let graph = H.graph inst in
        let input = H.input inst in
        let access = H.graph_access inst in
        let level1 = nodes_where graph (fun v -> H.level access ~k v = 1) in
        make_trial ~problem ~graph ~input ~world:(H.world inst) ~solvers:(H.solvers ~k)
          ~mutants:
            [
              ( "exempt-level-1",
                fun rng out ->
                  match pick rng level1 with
                  | None -> None
                  | Some v ->
                      out.(v) <- H.Exempt;
                      out_mutant v out );
              ( "relabel-rotate",
                fun rng out ->
                  let v = any_node rng out in
                  out.(v) <-
                    (match out.(v) with
                    | H.Chromatic TL.Red -> H.Chromatic TL.Blue
                    | H.Chromatic TL.Blue -> H.Decline
                    | H.Decline -> H.Exempt
                    | H.Exempt -> H.Chromatic TL.Red);
                  out_mutant v out );
            ]
          ~seed ());
  }

let rotate_sym = function
  | H.Chromatic TL.Red -> H.Chromatic TL.Blue
  | H.Chromatic TL.Blue -> H.Decline
  | H.Decline -> H.Exempt
  | H.Exempt -> H.Chromatic TL.Red

let hybrid =
  let k = 2 in
  let problem = Hy.problem ~k in
  {
    name = problem.Lcl.name;
    radius = problem.Lcl.radius;
    sizes = [ 3; 4 ];
    quick_sizes = [ 3 ];
    ir = false;
    make =
      (fun ~size ~seed ->
        let inst = Hy.uniform_instance ~k ~len:size ~bt_depth:3 ~seed in
        let graph = inst.Hy.graph in
        let input = Hy.input inst in
        let high = nodes_where graph (fun v -> (input v).Hy.level >= 2) in
        make_trial ~problem ~graph ~input ~world:(Hy.world inst) ~solvers:(Hy.solvers ~k)
          ~mutants:
            [
              ( "solved-junk",
                fun rng out ->
                  match pick rng high with
                  | None -> None
                  | Some v ->
                      out.(v) <- Hy.Solved { BT.verdict = BT.Bal; port = TL.bot };
                      out_mutant v out );
              ( "relabel-node",
                fun rng out ->
                  let v = any_node rng out in
                  out.(v) <-
                    (match out.(v) with
                    | Hy.Sym s -> Hy.Sym (rotate_sym s)
                    | Hy.Solved o -> Hy.Solved { o with BT.verdict = BT.Unbal });
                  out_mutant v out );
            ]
          ~seed ());
  }

let hh =
  let k = 2 and l = 3 in
  let problem = HH.problem ~k ~l in
  {
    name = problem.Lcl.name;
    radius = problem.Lcl.radius;
    sizes = [ 60 ];
    quick_sizes = [ 40 ];
    ir = false;
    make =
      (fun ~size ~seed ->
        let inst = HH.uniform_instance ~k ~l ~size_hint:size ~seed in
        let graph = inst.HH.graph in
        let input = HH.input inst in
        let hy_high =
          nodes_where graph (fun v ->
              let i = input v in
              i.HH.bit && i.HH.hy.Hy.level >= 2)
        in
        make_trial ~problem ~graph ~input ~world:(HH.world inst) ~solvers:(HH.solvers ~k ~l)
          ~mutants:
            [
              ( "solved-junk-bit1",
                fun rng out ->
                  match pick rng hy_high with
                  | None -> None
                  | Some v ->
                      out.(v) <- Hy.Solved { BT.verdict = BT.Bal; port = TL.bot };
                      out_mutant v out );
              ( "relabel-node",
                fun rng out ->
                  let v = any_node rng out in
                  out.(v) <-
                    (match out.(v) with
                    | Hy.Sym s -> Hy.Sym (rotate_sym s)
                    | Hy.Solved o -> Hy.Solved { o with BT.verdict = BT.Unbal });
                  out_mutant v out );
            ]
          ~seed ());
  }

let gap =
  let problem = Gap.problem in
  {
    name = problem.Lcl.name;
    radius = problem.Lcl.radius;
    sizes = [ 4; 5 ];
    quick_sizes = [ 3 ];
    ir = false;
    make =
      (fun ~size ~seed ->
        let inst = Gap.make ~depth:size ~seed in
        let graph = inst.Gap.graph in
        let input = Gap.input inst in
        let partition out =
          let some = ref [] and none = ref [] in
          Array.iteri
            (fun v o -> match o with Some _ -> some := v :: !some | None -> none := v :: !none)
            out;
          (!some, !none)
        in
        make_trial ~problem ~graph ~input ~world:(Gap.world inst) ~solvers:Gap.solvers
          ~cross_model:
            [
              ( "congest",
                fun () ->
                  congest_check ~problem ~graph ~input (Gap.run_congest inst ~bandwidth:8) );
            ]
          ~mutants:
            [
              ( "flip-bit",
                fun rng out ->
                  match pick rng (fst (partition out)) with
                  | None -> None
                  | Some v ->
                      out.(v) <- Option.map not out.(v);
                      out_mutant v out );
              ( "spurious-output",
                fun rng out ->
                  match pick rng (snd (partition out)) with
                  | None -> None
                  | Some v ->
                      out.(v) <- Some true;
                      out_mutant v out );
            ]
          ~seed ());
  }

let all () =
  [
    degree_parity;
    cycle_coloring;
    sinkless;
    leaf_coloring;
    promise_leaf;
    balanced_tree;
    hierarchical;
    hybrid;
    hh;
    gap;
  ]
