(* Strict JSON syntax checker (RFC 8259 grammar, stdlib only — the
   emitters live in lib/obs, so CI needs an independent parser to catch
   malformed emissions).  Usage: json_check [--jsonl] FILE.  Exits 0 iff
   the file is exactly one well-formed JSON value plus optional trailing
   whitespace — or, with --jsonl (the probe-transcript format of
   Vc_obs.Trace), one well-formed value per non-empty line; otherwise
   prints the position of the first error and exits 1. *)

exception Bad of int * string

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None
let fail st msg = raise (Bad (st.pos, msg))

let advance st = st.pos <- st.pos + 1

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> fail st (Printf.sprintf "expected %C, found %C" c d)
  | None -> fail st (Printf.sprintf "expected %C, found end of input" c)

let skip_ws st =
  let continue = ref true in
  while !continue do
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> advance st
    | _ -> continue := false
  done

let expect_keyword st kw =
  String.iter (fun c -> expect st c) kw

let is_digit = function '0' .. '9' -> true | _ -> false
let is_hex = function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false

let parse_digits st =
  if not (match peek st with Some c -> is_digit c | None -> false) then
    fail st "expected a digit";
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done

(* JSON numbers: optional minus; "0" or a nonzero-led digit run; then an
   optional fraction part and an optional signed exponent part. *)
let parse_number st =
  if peek st = Some '-' then advance st;
  (match peek st with
  | Some '0' -> advance st
  | Some c when is_digit c -> parse_digits st
  | _ -> fail st "expected a digit");
  if peek st = Some '.' then begin
    advance st;
    parse_digits st
  end;
  (match peek st with
  | Some ('e' | 'E') ->
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      parse_digits st
  | _ -> ())

let parse_string st =
  expect st '"';
  let closed = ref false in
  while not !closed do
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' ->
        advance st;
        closed := true
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance st
        | Some 'u' ->
            advance st;
            for _ = 1 to 4 do
              match peek st with
              | Some c when is_hex c -> advance st
              | _ -> fail st "expected four hex digits after \\u"
            done
        | _ -> fail st "invalid escape sequence")
    | Some c when Char.code c < 0x20 -> fail st "unescaped control character in string"
    | Some _ -> advance st
  done

let rec parse_value st =
  skip_ws st;
  match peek st with
  | Some '{' -> parse_object st
  | Some '[' -> parse_array st
  | Some '"' -> parse_string st
  | Some 't' -> expect_keyword st "true"
  | Some 'f' -> expect_keyword st "false"
  | Some 'n' -> expect_keyword st "null"
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)
  | None -> fail st "expected a JSON value, found end of input"

and parse_object st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then advance st
  else begin
    let continue = ref true in
    while !continue do
      skip_ws st;
      parse_string st;
      skip_ws st;
      expect st ':';
      parse_value st;
      skip_ws st;
      match peek st with
      | Some ',' -> advance st
      | Some '}' ->
          advance st;
          continue := false
      | _ -> fail st "expected ',' or '}' in object"
    done
  end

and parse_array st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then advance st
  else begin
    let continue = ref true in
    while !continue do
      parse_value st;
      skip_ws st;
      match peek st with
      | Some ',' -> advance st
      | Some ']' ->
          advance st;
          continue := false
      | _ -> fail st "expected ',' or ']' in array"
    done
  end

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let check_value src =
  let st = { src; pos = 0 } in
  parse_value st;
  skip_ws st;
  if st.pos <> String.length src then fail st "trailing garbage after JSON value"

let () =
  let jsonl, path =
    match Sys.argv with
    | [| _; "--jsonl"; path |] -> (true, path)
    | [| _; path |] -> (false, path)
    | _ ->
        prerr_endline "usage: json_check [--jsonl] FILE";
        exit 2
  in
  let src = try read_file path with Sys_error msg -> prerr_endline msg; exit 2 in
  if jsonl then begin
    let lines = String.split_on_char '\n' src in
    let n = ref 0 in
    List.iteri
      (fun i line ->
        if String.trim line <> "" then begin
          incr n;
          match check_value line with
          | () -> ()
          | exception Bad (pos, msg) ->
              Printf.eprintf "%s: line %d: malformed JSON at byte %d: %s\n" path (i + 1) pos msg;
              exit 1
        end)
      lines;
    if !n = 0 then begin
      Printf.eprintf "%s: no JSON values (empty JSONL file)\n" path;
      exit 1
    end;
    Printf.printf "%s: well-formed JSONL (%d values)\n" path !n
  end
  else
    match check_value src with
    | () -> Printf.printf "%s: well-formed JSON (%d bytes)\n" path (String.length src)
    | exception Bad (pos, msg) ->
        Printf.eprintf "%s: malformed JSON at byte %d: %s\n" path pos msg;
        exit 1
