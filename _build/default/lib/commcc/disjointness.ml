module Splitmix = Vc_rng.Splitmix

type t = {
  x : bool array;
  y : bool array;
}

let create ~x ~y =
  if Array.length x <> Array.length y then
    invalid_arg "Disjointness.create: length mismatch";
  if Array.length x = 0 then invalid_arg "Disjointness.create: empty vectors";
  { x; y }

let size t = Array.length t.x

let intersection_size t =
  let c = ref 0 in
  Array.iteri (fun i xi -> if xi && t.y.(i) then incr c) t.x;
  !c

let eval t = intersection_size t = 0

let random ~n ~seed =
  let rng = Splitmix.create seed in
  let x = Array.init n (fun _ -> Splitmix.bool rng) in
  let y = Array.init n (fun _ -> Splitmix.bool rng) in
  create ~x ~y

let random_promise ~n ~intersecting ~seed =
  let rng = Splitmix.create seed in
  (* Sparse vectors keep the promise easy to enforce: each side marks
     roughly n/4 positions, on disjoint index ranges, then optionally one
     shared position. *)
  let x = Array.make n false in
  let y = Array.make n false in
  let half = n / 2 in
  for _ = 1 to max 1 (n / 4) do
    x.(Splitmix.int rng ~bound:(max 1 half)) <- true;
    y.(half + Splitmix.int rng ~bound:(max 1 (n - half))) <- true
  done;
  if intersecting then begin
    let i = Splitmix.int rng ~bound:n in
    x.(i) <- true;
    y.(i) <- true
  end;
  create ~x ~y

let pp ppf t =
  let bits a = String.init (Array.length a) (fun i -> if a.(i) then '1' else '0') in
  Fmt.pf ppf "x=%s y=%s" (bits t.x) (bits t.y)
