test/test_bt_congest.ml: Alcotest Array List Printf Vc_commcc Vc_graph Vc_lcl Vc_model Volcomp
