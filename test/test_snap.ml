(* Snapshot codec robustness: the decoder is total.  Truncated files,
   torn headers, flipped bytes, wrong versions and random garbage must
   all come back as structured errors — never an exception, never a
   segfault — and the header codec round-trips exactly. *)

module Snap = Vc_snap.Snap
module Store = Vc_snap.Store
module Iarr = Vc_graph.Iarr
module Registry = Vc_check.Registry

let tmp_path suffix = Filename.temp_file "vc-snap-test" suffix

let with_tmp suffix f =
  let path = tmp_path suffix in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc s)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let segments =
  [
    ("alpha", Iarr.of_array [| 1; 2; 3; 4; 5 |]);
    ("beta", Iarr.of_array [| -7; max_int; min_int; 0 |]);
    ("empty", Iarr.of_array [||]);
  ]

let write_sample path =
  match
    Snap.write ~path ~builder_version:"test-v1" ~problem:"UnitTest" ~size:5 ~seed:99L ~n:5
      ~segments
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write_sample: %s" (Snap.error_to_string e)

let err_str = function
  | Ok _ -> "ok"
  | Error e -> Snap.error_to_string e

(* --- round trip --------------------------------------------------------------- *)

let test_roundtrip () =
  with_tmp ".snap" @@ fun path ->
  write_sample path;
  match Snap.load ~path with
  | Error e -> Alcotest.failf "load: %s" (Snap.error_to_string e)
  | Ok l ->
      Alcotest.(check string) "problem" "UnitTest" l.Snap.hdr.Snap.problem;
      Alcotest.(check int) "size" 5 l.Snap.hdr.Snap.size;
      Alcotest.(check int64) "seed" 99L l.Snap.hdr.Snap.seed;
      Alcotest.(check int) "n" 5 l.Snap.hdr.Snap.n;
      Alcotest.(check int) "segments" 3 (List.length l.Snap.hdr.Snap.segments);
      List.iter
        (fun (name, expect) ->
          match Snap.seg_find l name with
          | None -> Alcotest.failf "segment %s missing" name
          | Some a ->
              Alcotest.(check (array int))
                (Printf.sprintf "segment %s contents" name)
                (Iarr.to_array expect) (Iarr.to_array a))
        segments;
      Alcotest.(check bool) "absent segment" true (Snap.seg_find l "nope" = None);
      (match Snap.verify ~path with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "verify intact: %s" (Snap.error_to_string e))

(* --- structured failures ------------------------------------------------------- *)

(* every strict prefix of a valid snapshot must load as a structured
   error, never raise: this sweeps through mid-preamble, mid-header and
   mid-payload cuts (segment-bounds checks catch payload truncation) *)
let test_truncations () =
  with_tmp ".snap" @@ fun path ->
  write_sample path;
  let whole = read_file path in
  with_tmp ".cut" @@ fun cut_path ->
  for cut = 0 to String.length whole - 1 do
    write_file cut_path (String.sub whole 0 cut);
    match Snap.load ~path:cut_path with
    | Ok _ -> Alcotest.failf "prefix of %d bytes loaded" cut
    | Error (Snap.Truncated _ | Snap.Bad_header _ | Snap.Bad_checksum _) -> ()
    | Error e -> Alcotest.failf "prefix of %d bytes: unexpected %s" cut (Snap.error_to_string e)
  done

let patch s off bytes =
  let b = Bytes.of_string s in
  String.iteri (fun i c -> Bytes.set b (off + i) c) bytes;
  Bytes.to_string b

(* xor-flip one byte: guaranteed to change it, whatever it was *)
let flip s off =
  let b = Bytes.of_string s in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0xff));
  Bytes.to_string b

let le64 x =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 x;
  Bytes.to_string b

let expect_error what expected result =
  if err_str result <> err_str (Error expected) then
    Alcotest.failf "%s: expected %s, got %s" what
      (Snap.error_to_string expected)
      (err_str result)

let test_corruptions () =
  with_tmp ".snap" @@ fun path ->
  write_sample path;
  let whole = read_file path in
  with_tmp ".bad" @@ fun bad ->
  (* bad magic *)
  write_file bad (patch whole 0 "X");
  expect_error "magic" Snap.Bad_magic (Snap.load ~path:bad);
  (* wrong version *)
  write_file bad (patch whole 8 (le64 2L));
  expect_error "version" (Snap.Bad_version 2) (Snap.load ~path:bad);
  (* foreign byte order *)
  write_file bad (patch whole 16 "\xff\xff\xff\xff\xff\xff\xff\xff");
  expect_error "byte order" Snap.Bad_byte_order (Snap.load ~path:bad);
  (* unreasonable header length *)
  write_file bad (patch whole 24 (le64 (Int64.of_int ((1 lsl 20) + 1))));
  expect_error "header length" (Snap.Bad_header "header length") (Snap.load ~path:bad);
  (* torn header: flip one blob byte — the header checksum catches it *)
  write_file bad (flip whole 48);
  expect_error "torn header" (Snap.Bad_checksum "header") (Snap.load ~path:bad);
  (* torn payload: flip a byte in the last segment.  load is page-lazy
     (accepts), but verify recomputes segment sums and must refuse *)
  write_file bad (flip whole (String.length whole - 1));
  (match Snap.load ~path:bad with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "payload flip rejected by load: %s" (Snap.error_to_string e));
  (match Snap.verify ~path:bad with
  | Error (Snap.Bad_checksum _) -> ()
  | r -> Alcotest.failf "payload flip: verify said %s" (err_str r));
  (* a segment pointing past the end of the file *)
  write_file bad (String.sub whole 0 (String.length whole - 8));
  (match Snap.load ~path:bad with
  | Error (Snap.Truncated _) -> ()
  | r -> Alcotest.failf "short payload: load said %s" (err_str r))

let test_missing_file () =
  match Snap.load ~path:"/nonexistent/volcomp.snap" with
  | Error (Snap.Io _) -> ()
  | r -> Alcotest.failf "missing file: %s" (err_str r)

(* --- store semantics ----------------------------------------------------------- *)

let with_store ~builder_version f =
  let dir = Filename.temp_file "vc-snap-store" "" in
  Sys.remove dir;
  let store = Store.create ~dir ~builder_version in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) (Store.files store);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f store)

let test_store_roundtrip () =
  with_store ~builder_version:"test-v1" @@ fun store ->
  let key = ("UnitTest", 5, 99L) in
  let load (problem, size, seed) = Store.load store ~problem ~size ~seed in
  Alcotest.(check bool) "cold miss" true (load key = None);
  let problem, size, seed = key in
  Alcotest.(check bool)
    "publish" true
    (Store.publish store ~problem ~size ~seed ~n:5 ~segments);
  (match load key with
  | None -> Alcotest.fail "published key misses"
  | Some l -> Alcotest.(check string) "hit problem" "UnitTest" l.Snap.hdr.Snap.problem);
  Alcotest.(check bool) "other size misses" true (load ("UnitTest", 6, 99L) = None);
  Alcotest.(check bool) "other seed misses" true (load ("UnitTest", 5, 98L) = None);
  (* a corrupt store file is a miss, not a crash *)
  (match Store.files store with
  | [ p ] -> write_file p "garbage"
  | fs -> Alcotest.failf "expected 1 store file, found %d" (List.length fs));
  Alcotest.(check bool) "corrupt file misses" true (load key = None)

(* A stale builder version must never serve: even if the file is placed
   at the exact path the new store would look at, the header re-check
   rejects it. *)
let test_store_stale_builder () =
  with_store ~builder_version:"old" @@ fun old_store ->
  with_store ~builder_version:"new" @@ fun new_store ->
  let problem = "UnitTest" and size = 5 and seed = 99L in
  Alcotest.(check bool)
    "publish old" true
    (Store.publish old_store ~problem ~size ~seed ~n:5 ~segments);
  (match Store.files old_store with
  | [ p ] ->
      let target = Store.path new_store ~problem ~size ~seed in
      write_file target (read_file p)
  | fs -> Alcotest.failf "expected 1 old-store file, found %d" (List.length fs));
  Alcotest.(check bool)
    "stale builder version misses" true
    (Store.load new_store ~problem ~size ~seed = None)

(* The registry bump (registry-v1 → registry-v2, when the graph-family
   builders landed) must invalidate every pre-bump store: a registry-v1
   snapshot placed at the exact path the current store reads is a miss,
   never a stale hit. *)
let test_store_registry_v1_stale () =
  Alcotest.(check string) "current registry version" "registry-v2" Registry.builder_version;
  with_store ~builder_version:"registry-v1" @@ fun v1_store ->
  with_store ~builder_version:Registry.builder_version @@ fun store ->
  let problem = "DegreeParity" and size = 16 and seed = 42L in
  Alcotest.(check bool)
    "publish registry-v1" true
    (Store.publish v1_store ~problem ~size ~seed ~n:16 ~segments);
  (match Store.files v1_store with
  | [ p ] ->
      let target = Store.path store ~problem ~size ~seed in
      write_file target (read_file p)
  | fs -> Alcotest.failf "expected 1 v1-store file, found %d" (List.length fs));
  Alcotest.(check bool)
    "registry-v1 snapshot misses under registry-v2" true
    (Store.load store ~problem ~size ~seed = None)

(* Registry integration: acquiring through a store is a publish-on-miss
   then a hit, and the hit is marked [`Snapshot]. *)
let test_registry_acquire () =
  with_store ~builder_version:Registry.builder_version @@ fun store ->
  let e =
    List.find
      (fun (e : Registry.entry) -> e.Registry.name = "LeafColoring")
      (Registry.all ())
  in
  let size = List.hd e.Registry.quick_sizes in
  let n_cold = e.Registry.acquire ~store ~size ~seed:7L () in
  Alcotest.(check bool) "store populated" true (Store.files store <> []);
  let trial = e.Registry.make ~store ~size ~seed:7L () in
  Alcotest.(check bool) "hit is `Snapshot" true (trial.Registry.t_source = `Snapshot);
  Alcotest.(check int) "node counts agree" n_cold trial.Registry.t_n

(* --- qcheck properties --------------------------------------------------------- *)

let printable_string_gen =
  QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 32 126)) (int_bound 24))

let header_gen =
  QCheck.Gen.(
    let* builder_version = printable_string_gen in
    let* problem = printable_string_gen in
    let* size = nat in
    let* seed = map Int64.of_int int in
    let* n = nat in
    let* segments =
      list_size (int_bound 6)
        (let* seg_name = printable_string_gen in
         let* seg_off = nat in
         let* seg_len = nat in
         let* seg_sum = map Int64.of_int int in
         return { Snap.seg_name; seg_off; seg_len; seg_sum })
    in
    return
      { Snap.version = Snap.current_version; builder_version; problem; size; seed; n; segments })

let qcheck_header_roundtrip =
  QCheck.Test.make ~count:300 ~name:"Snap: header codec round-trips exactly"
    (QCheck.make ~print:(fun h -> h.Snap.problem) header_gen)
    (fun h ->
      match Snap.decode_header (Snap.encode_header h) with
      | Ok h' -> h' = h
      | Error e -> QCheck.Test.fail_reportf "decode: %s" (Snap.error_to_string e))

let qcheck_header_garbage =
  QCheck.Test.make ~count:500 ~name:"Snap: decode_header never raises on random bytes"
    QCheck.(string_of_size Gen.(int_bound 200))
    (fun blob ->
      match Snap.decode_header blob with Ok _ -> true | Error (Snap.Bad_header _) -> true | Error _ -> false)

let qcheck_load_garbage =
  QCheck.Test.make ~count:100 ~name:"Snap: load never raises on random files"
    QCheck.(string_of_size Gen.(int_bound 256))
    (fun contents ->
      with_tmp ".fuzz" @@ fun path ->
      write_file path contents;
      match Snap.load ~path with Ok _ -> false | Error _ -> true)

let suites =
  [
    ( "snap",
      [
        Alcotest.test_case "write/load/verify round-trip" `Quick test_roundtrip;
        Alcotest.test_case "every truncation is a structured error" `Quick test_truncations;
        Alcotest.test_case "torn headers, bad checksums, wrong versions" `Quick
          test_corruptions;
        Alcotest.test_case "missing file is Io, not an exception" `Quick test_missing_file;
        Alcotest.test_case "store publish/load/miss semantics" `Quick test_store_roundtrip;
        Alcotest.test_case "stale builder version never serves" `Quick
          test_store_stale_builder;
        Alcotest.test_case "registry-v1 store never serves registry-v2" `Quick
          test_store_registry_v1_stale;
        Alcotest.test_case "registry acquire populates and hits" `Quick test_registry_acquire;
        QCheck_alcotest.to_alcotest qcheck_header_roundtrip;
        QCheck_alcotest.to_alcotest qcheck_header_garbage;
        QCheck_alcotest.to_alcotest qcheck_load_garbage;
      ] );
  ]
