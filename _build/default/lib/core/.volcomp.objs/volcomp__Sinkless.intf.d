lib/core/sinkless.mli: Vc_graph Vc_lcl Vc_model
