(* Strict JSON syntax checker (RFC 8259 grammar, stdlib only — the
   emitters live in lib/obs, so CI needs an independent parser to catch
   malformed emissions).  Usage: json_check [--jsonl|--bench] FILE.
   Exits 0 iff the file is exactly one well-formed JSON value plus
   optional trailing whitespace — or, with --jsonl (the probe-transcript
   format of Vc_obs.Trace), one well-formed value per non-empty line;
   otherwise prints the position of the first error and exits 1.

   --bench additionally validates the shape of a bench report's [snap]
   section (the snapshot-load-vs-cold-build rows: a non-empty array of
   rows each carrying name/build_ns/load_ns/bytes/speedup/ok with the
   right types, every row's gate passed), its [rewarm] section, its
   [synth] section (the SAT-synthesis cost rows: fully populated, with
   at least one SAT and one UNSAT verdict), and its [families] section
   (the graph-family measurement ladders: every fitted class agrees,
   every point well-shaped, and Question 7.3's sinkless-orientation
   rungs present).  The parser builds a minimal
   value tree for this; the syntax-only modes discard it. *)

exception Bad of int * string

(* Just enough structure for the --bench shape checks; numbers need no
   value, strings keep their raw (unescaped) contents. *)
type v =
  | Vnull
  | Vbool of bool
  | Vnum
  | Vstr of string
  | Varr of v list
  | Vobj of (string * v) list

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None
let fail st msg = raise (Bad (st.pos, msg))

let advance st = st.pos <- st.pos + 1

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> fail st (Printf.sprintf "expected %C, found %C" c d)
  | None -> fail st (Printf.sprintf "expected %C, found end of input" c)

let skip_ws st =
  let continue = ref true in
  while !continue do
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> advance st
    | _ -> continue := false
  done

let expect_keyword st kw =
  String.iter (fun c -> expect st c) kw

let is_digit = function '0' .. '9' -> true | _ -> false
let is_hex = function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false

let parse_digits st =
  if not (match peek st with Some c -> is_digit c | None -> false) then
    fail st "expected a digit";
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done

(* JSON numbers: optional minus; "0" or a nonzero-led digit run; then an
   optional fraction part and an optional signed exponent part. *)
let parse_number st =
  if peek st = Some '-' then advance st;
  (match peek st with
  | Some '0' -> advance st
  | Some c when is_digit c -> parse_digits st
  | _ -> fail st "expected a digit");
  if peek st = Some '.' then begin
    advance st;
    parse_digits st
  end;
  (match peek st with
  | Some ('e' | 'E') ->
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      parse_digits st
  | _ -> ())

(* Returns the raw (still-escaped) contents — the --bench member names
   are plain ASCII, so no unescaping is needed to compare them. *)
let parse_string st =
  expect st '"';
  let start = st.pos in
  let closed = ref false in
  while not !closed do
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' ->
        advance st;
        closed := true
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance st
        | Some 'u' ->
            advance st;
            for _ = 1 to 4 do
              match peek st with
              | Some c when is_hex c -> advance st
              | _ -> fail st "expected four hex digits after \\u"
            done
        | _ -> fail st "invalid escape sequence")
    | Some c when Char.code c < 0x20 -> fail st "unescaped control character in string"
    | Some _ -> advance st
  done;
  String.sub st.src start (st.pos - 1 - start)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | Some '{' -> parse_object st
  | Some '[' -> parse_array st
  | Some '"' -> Vstr (parse_string st)
  | Some 't' ->
      expect_keyword st "true";
      Vbool true
  | Some 'f' ->
      expect_keyword st "false";
      Vbool false
  | Some 'n' ->
      expect_keyword st "null";
      Vnull
  | Some ('-' | '0' .. '9') ->
      parse_number st;
      Vnum
  | Some c -> fail st (Printf.sprintf "unexpected character %C" c)
  | None -> fail st "expected a JSON value, found end of input"

and parse_object st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin
    advance st;
    Vobj []
  end
  else begin
    let members = ref [] in
    let continue = ref true in
    while !continue do
      skip_ws st;
      let key = parse_string st in
      skip_ws st;
      expect st ':';
      let value = parse_value st in
      members := (key, value) :: !members;
      skip_ws st;
      match peek st with
      | Some ',' -> advance st
      | Some '}' ->
          advance st;
          continue := false
      | _ -> fail st "expected ',' or '}' in object"
    done;
    Vobj (List.rev !members)
  end

and parse_array st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin
    advance st;
    Varr []
  end
  else begin
    let items = ref [] in
    let continue = ref true in
    while !continue do
      items := parse_value st :: !items;
      skip_ws st;
      match peek st with
      | Some ',' -> advance st
      | Some ']' ->
          advance st;
          continue := false
      | _ -> fail st "expected ',' or ']' in array"
    done;
    Varr (List.rev !items)
  end

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let check_value src =
  let st = { src; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length src then fail st "trailing garbage after JSON value";
  v

(* --- bench-report shape checks ------------------------------------------------ *)

let member key = function Vobj ms -> List.assoc_opt key ms | _ -> None

let bench_fail path fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "%s: bad bench report: %s\n" path msg;
      exit 1)
    fmt

(* The snap section carries the snapshot-load-vs-cold-build gate rows;
   each must be fully populated and must have passed its gate. *)
let check_snap_section path doc =
  let rows =
    match member "snap" doc with
    | Some (Varr (_ :: _ as rows)) -> rows
    | Some (Varr []) -> bench_fail path "snap section is empty"
    | Some _ -> bench_fail path "snap section is not an array"
    | None -> bench_fail path "no snap section"
  in
  List.iteri
    (fun i row ->
      let want key = function
        | Some got -> got
        | None -> bench_fail path "snap row %d lacks %s" i key
      in
      (match want "name" (member "name" row) with
      | Vstr _ -> ()
      | _ -> bench_fail path "snap row %d: name is not a string" i);
      List.iter
        (fun key ->
          match want key (member key row) with
          | Vnum -> ()
          | _ -> bench_fail path "snap row %d: %s is not a number" i key)
        [ "build_ns"; "load_ns"; "bytes"; "speedup" ];
      match want "ok" (member "ok" row) with
      | Vbool true -> ()
      | Vbool false -> bench_fail path "snap row %d failed its speedup gate" i
      | _ -> bench_fail path "snap row %d: ok is not a boolean" i)
    rows;
  List.length rows

(* The rewarm section is the serving-layer build-vs-snapshot comparison;
   report-only (no gate flag) but it must be fully populated. *)
let check_rewarm_section path doc =
  let row =
    match member "rewarm" doc with
    | Some (Vobj _ as row) -> row
    | Some _ -> bench_fail path "rewarm section is not an object"
    | None -> bench_fail path "no rewarm section"
  in
  (match member "problem" row with
  | Some (Vstr _) -> ()
  | _ -> bench_fail path "rewarm: problem is not a string");
  List.iter
    (fun key ->
      match member key row with
      | Some Vnum -> ()
      | _ -> bench_fail path "rewarm: %s is not a number" key)
    [ "size"; "rebuild_ns"; "snapshot_ns"; "speedup" ]

(* The synth section carries the SAT-synthesis cost rows (--synth);
   report-only, but every row must be fully populated and the verdict
   pattern must be coherent: at least one SAT and one UNSAT row. *)
let check_synth_section path doc =
  let rows =
    match member "synth" doc with
    | Some (Varr (_ :: _ as rows)) -> rows
    | Some (Varr []) -> bench_fail path "synth section is empty"
    | Some _ -> bench_fail path "synth section is not an array"
    | None -> bench_fail path "no synth section"
  in
  let sats = ref 0 and unsats = ref 0 in
  List.iteri
    (fun i row ->
      (match member "problem" row with
      | Some (Vstr _) -> ()
      | _ -> bench_fail path "synth row %d: problem is not a string" i);
      List.iter
        (fun key ->
          match member key row with
          | Some Vnum -> ()
          | _ -> bench_fail path "synth row %d: %s is not a number" i key)
        [ "volume"; "cegis"; "conflicts"; "propagations"; "vars"; "clauses"; "wall_s" ];
      match member "sat" row with
      | Some (Vbool true) -> incr sats
      | Some (Vbool false) -> incr unsats
      | _ -> bench_fail path "synth row %d: sat is not a boolean" i)
    rows;
  if !sats = 0 then bench_fail path "synth section has no SAT row";
  if !unsats = 0 then bench_fail path "synth section has no UNSAT row";
  List.length rows

(* The families section carries the graph-family measurement ladders:
   every report must have all_agree true, every measurement a fitted
   class that agrees with the paper's claim and a non-empty point list,
   and Question 7.3's sinkless-orientation ("SO:") rungs must appear. *)
let check_families_section path doc =
  let reports =
    match member "families" doc with
    | Some (Varr (_ :: _ as rs)) -> rs
    | Some (Varr []) -> bench_fail path "families section is empty"
    | Some _ -> bench_fail path "families section is not an array"
    | None -> bench_fail path "no families section"
  in
  let so = ref 0 in
  List.iteri
    (fun i report ->
      (match member "title" report with
      | Some (Vstr _) -> ()
      | _ -> bench_fail path "families report %d: title is not a string" i);
      (match member "all_agree" report with
      | Some (Vbool true) -> ()
      | Some (Vbool false) ->
          bench_fail path "families report %d has a fitted-class mismatch" i
      | _ -> bench_fail path "families report %d: all_agree is not a boolean" i);
      let ms =
        match member "measurements" report with
        | Some (Varr (_ :: _ as ms)) -> ms
        | _ -> bench_fail path "families report %d: measurements missing or empty" i
      in
      List.iteri
        (fun j m ->
          (match member "quantity" m with
          | Some (Vstr q) ->
              if String.length q >= 3 && String.sub q 0 3 = "SO:" then incr so
          | _ ->
              bench_fail path "families report %d measurement %d: quantity is not a string" i j);
          List.iter
            (fun key ->
              match member key m with
              | Some (Vstr _) -> ()
              | _ ->
                  bench_fail path "families report %d measurement %d: %s is not a string" i j
                    key)
            [ "paper_claim"; "fitted" ];
          (match member "agrees" m with
          | Some (Vbool true) -> ()
          | Some (Vbool false) ->
              bench_fail path "families report %d measurement %d disagrees with the paper" i j
          | _ ->
              bench_fail path "families report %d measurement %d: agrees is not a boolean" i j);
          match member "points" m with
          | Some (Varr (_ :: _ as pts)) ->
              List.iter
                (function
                  | Varr [ Vnum; Vnum ] -> ()
                  | _ -> bench_fail path "families report %d measurement %d: malformed point" i j)
                pts
          | _ -> bench_fail path "families report %d measurement %d: points missing or empty" i j)
        ms)
    reports;
  if !so = 0 then bench_fail path "families section lacks sinkless-orientation (SO:) rungs";
  List.length reports

let () =
  let mode, path =
    match Sys.argv with
    | [| _; "--jsonl"; path |] -> (`Jsonl, path)
    | [| _; "--bench"; path |] -> (`Bench, path)
    | [| _; path |] -> (`Plain, path)
    | _ ->
        prerr_endline "usage: json_check [--jsonl|--bench] FILE";
        exit 2
  in
  let src = try read_file path with Sys_error msg -> prerr_endline msg; exit 2 in
  if mode = `Jsonl then begin
    let lines = String.split_on_char '\n' src in
    let n = ref 0 in
    List.iteri
      (fun i line ->
        if String.trim line <> "" then begin
          incr n;
          match check_value line with
          | (_ : v) -> ()
          | exception Bad (pos, msg) ->
              Printf.eprintf "%s: line %d: malformed JSON at byte %d: %s\n" path (i + 1) pos msg;
              exit 1
        end)
      lines;
    if !n = 0 then begin
      Printf.eprintf "%s: no JSON values (empty JSONL file)\n" path;
      exit 1
    end;
    Printf.printf "%s: well-formed JSONL (%d values)\n" path !n
  end
  else
    match check_value src with
    | doc ->
        if mode = `Bench then begin
          let rows = check_snap_section path doc in
          check_rewarm_section path doc;
          let synth_rows = check_synth_section path doc in
          let family_reports = check_families_section path doc in
          Printf.printf
            "%s: well-formed bench report (%d bytes, %d snap row(s), %d synth row(s), %d \
             family report(s) ok)\n"
            path (String.length src) rows synth_rows family_reports
        end
        else Printf.printf "%s: well-formed JSON (%d bytes)\n" path (String.length src)
    | exception Bad (pos, msg) ->
        Printf.eprintf "%s: malformed JSON at byte %d: %s\n" path pos msg;
        exit 1
