(* Tests for the graph substrate: graphs, builders, BFS, tree labelings. *)

module Graph = Vc_graph.Graph
module Builder = Vc_graph.Builder
module Bfs = Vc_graph.Bfs
module TL = Vc_graph.Tree_labels
module Splitmix = Vc_rng.Splitmix
module Gen = Vc_check.Gen

let status_t = Alcotest.testable TL.pp_status TL.equal_status

(* --- Graph construction and basic accessors ------------------------- *)

let test_path_structure () =
  let g = Builder.path 5 in
  Alcotest.(check int) "n" 5 (Graph.n g);
  Alcotest.(check int) "max degree" 2 (Graph.max_degree g);
  Alcotest.(check int) "endpoint degree" 1 (Graph.degree g 0);
  Alcotest.(check int) "middle degree" 2 (Graph.degree g 2);
  Alcotest.(check bool) "connected" true (Graph.is_connected g)

let test_ports_are_inverse_consistent () =
  let g = Builder.path 5 in
  Graph.iter_nodes g (fun v ->
      for p = 1 to Graph.degree g v do
        let w = Graph.neighbor g v p in
        match Graph.port_to g w v with
        | None -> Alcotest.fail "missing reverse port"
        | Some q -> Alcotest.(check int) "reverse resolves" v (Graph.neighbor g w q)
      done)

let test_invalid_port_raises () =
  let g = Builder.path 3 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Graph.neighbor g 0 2);
       false
     with Invalid_argument _ -> true)

let test_rejects_asymmetric () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Graph.create ~ids:[| 1; 2 |] ~adj:[| [| 1 |]; [||] |]);
       false
     with Invalid_argument _ -> true)

let test_rejects_self_loop () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Graph.create ~ids:[| 1 |] ~adj:[| [| 0 |] |]);
       false
     with Invalid_argument _ -> true)

let test_rejects_duplicate_ids () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Graph.create ~ids:[| 1; 1 |] ~adj:[| [| 1 |]; [| 0 |] |]);
       false
     with Invalid_argument _ -> true)

let test_ids_and_lookup () =
  let g = Builder.path 4 in
  Graph.iter_nodes g (fun v ->
      Alcotest.(check (option int)) "roundtrip" (Some v) (Graph.node_of_id g (Graph.id g v)))

let test_shuffle_ids_is_permutation () =
  let g = Builder.cycle 10 in
  let g' = Graph.shuffle_ids g ~rng:(Splitmix.create 1L) in
  let ids = List.sort compare (List.map (Graph.id g') (Graph.nodes g')) in
  Alcotest.(check (list int)) "ids are 1..n" (List.init 10 (fun i -> i + 1)) ids

let test_edges_count () =
  let g = Builder.cycle 7 in
  Alcotest.(check int) "cycle has n edges" 7 (List.length (Graph.edges g))

let test_disjoint_union () =
  let g, offsets = Builder.disjoint_union [ Builder.path 3; Builder.cycle 4 ] in
  Alcotest.(check int) "n" 7 (Graph.n g);
  Alcotest.(check bool) "disconnected" false (Graph.is_connected g);
  Alcotest.(check int) "offset 0" 0 offsets.(0);
  Alcotest.(check int) "offset 1" 3 offsets.(1)

let test_attach () =
  let g, _ = Builder.disjoint_union [ Builder.path 2; Builder.path 2 ] in
  let g = Builder.attach g ~extra_edges:[ (1, 2) ] in
  Alcotest.(check bool) "connected after attach" true (Graph.is_connected g);
  Alcotest.(check int) "degree grew" 2 (Graph.degree g 1)

let test_port_to_non_neighbor () =
  let g = Builder.path 4 in
  Alcotest.(check (option int)) "self" None (Graph.port_to g 1 1);
  Alcotest.(check (option int)) "non-adjacent" None (Graph.port_to g 0 2);
  Alcotest.(check (option int)) "out of range" None (Graph.port_to g 0 (-1))

let prop_port_to_inverts_neighbor =
  QCheck.Test.make ~name:"port_to inverts neighbor on every generated graph" ~count:100
    (Gen.spec ())
    (fun spec ->
      let g = Gen.build spec in
      Graph.fold_nodes g ~init:true ~f:(fun acc v ->
          acc
          &&
          let ok = ref true in
          for p = 1 to Graph.degree g v do
            if Graph.port_to g v (Graph.neighbor g v p) <> Some p then ok := false
          done;
          !ok))

let prop_iter_fold_neighbors_agree =
  QCheck.Test.make ~name:"iter/fold_neighbors agree with neighbors" ~count:100 (Gen.spec ())
    (fun spec ->
      let g = Gen.build spec in
      Graph.fold_nodes g ~init:true ~f:(fun acc v ->
          let expected = Array.to_list (Graph.neighbors g v) in
          let via_iter = ref [] in
          Graph.iter_neighbors g v (fun w -> via_iter := w :: !via_iter);
          let via_fold = Graph.fold_neighbors g v ~init:[] ~f:(fun l w -> w :: l) in
          acc && List.rev !via_iter = expected && List.rev via_fold = expected))

(* --- Builders -------------------------------------------------------- *)

let test_cycle_orientation () =
  let g = Builder.cycle 6 in
  Graph.iter_nodes g (fun v ->
      Alcotest.(check int) "port 1 is successor" ((v + 1) mod 6) (Graph.neighbor g v 1);
      Alcotest.(check int) "port 2 is predecessor" ((v + 5) mod 6) (Graph.neighbor g v 2))

let test_complete_tree_shape () =
  let depth = 4 in
  let g = Builder.complete_binary_tree ~depth in
  Alcotest.(check int) "n = 2^(d+1)-1" 31 (Graph.n g);
  Alcotest.(check int) "root id is 1" 1 (Graph.id g (Builder.tree_root g));
  Alcotest.(check int) "root degree" 2 (Graph.degree g 0);
  Alcotest.(check int) "internal degree" 3 (Graph.degree g 1);
  let leaves = Builder.leaves_of_complete_tree ~depth in
  Alcotest.(check int) "leaf count" 16 (List.length leaves);
  List.iter (fun v -> Alcotest.(check int) "leaf degree" 1 (Graph.degree g v)) leaves

let test_complete_tree_ports () =
  let depth = 3 in
  let g = Builder.complete_binary_tree ~depth in
  (* Non-root internal: port 1 parent, port 2 left child, port 3 right. *)
  Alcotest.(check int) "port 1 parent" 0 (Graph.neighbor g 1 1);
  Alcotest.(check int) "port 2 left" 3 (Graph.neighbor g 1 2);
  Alcotest.(check int) "port 3 right" 4 (Graph.neighbor g 1 3)

let test_random_tree_all_binary () =
  let g = Builder.random_binary_tree ~n:41 ~rng:(Splitmix.create 2L) in
  Alcotest.(check int) "odd node count" 41 (Graph.n g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  (* Every node has degree 1 (leaf), 2 (root), or 3 (internal). *)
  Graph.iter_nodes g (fun v ->
      let d = Graph.degree g v in
      Alcotest.(check bool) "degree in {1,2,3}" true (d = 1 || d = 2 || d = 3))

(* --- BFS -------------------------------------------------------------- *)

let test_bfs_distances_path () =
  let g = Builder.path 6 in
  let d = Bfs.distances g 0 in
  Alcotest.(check int) "far end" 5 d.(5);
  Alcotest.(check int) "origin" 0 d.(0)

let test_bfs_disconnected () =
  let g, _ = Builder.disjoint_union [ Builder.path 2; Builder.path 2 ] in
  Alcotest.(check (option int)) "unreachable" None (Bfs.dist g 0 3)

let test_ball_radius () =
  let g = Builder.complete_binary_tree ~depth:3 in
  let b = Bfs.ball g 0 ~radius:1 in
  Alcotest.(check int) "root ball radius 1" 3 (List.length b);
  let b2 = Bfs.ball g 0 ~radius:2 in
  Alcotest.(check int) "root ball radius 2" 7 (List.length b2)

let test_diameter () =
  Alcotest.(check int) "path diameter" 5 (Bfs.diameter (Builder.path 6));
  Alcotest.(check int) "cycle diameter" 3 (Bfs.diameter (Builder.cycle 7))

let prop_bfs_triangle_inequality =
  QCheck.Test.make ~name:"bfs distances satisfy triangle inequality on cycles" ~count:50
    QCheck.(int_range 3 40)
    (fun n ->
      let g = Builder.cycle n in
      let d0 = Bfs.distances g 0 in
      let d1 = Bfs.distances g 1 in
      Graph.fold_nodes g ~init:true ~f:(fun acc v -> acc && d0.(v) <= d1.(v) + 1))

(* --- Tree labelings --------------------------------------------------- *)

let test_complete_tree_labeling_statuses () =
  let depth = 3 in
  let g, lab = TL.of_complete_binary_tree ~depth in
  Alcotest.check status_t "root internal" TL.Internal (TL.status g lab 0);
  Alcotest.check status_t "mid internal" TL.Internal (TL.status g lab 2);
  List.iter
    (fun v -> Alcotest.check status_t "leaf" TL.Leaf (TL.status g lab v))
    (Builder.leaves_of_complete_tree ~depth)

let test_all_bot_labeling_inconsistent () =
  let g = Builder.path 4 in
  let lab = TL.make ~n:4 in
  Graph.iter_nodes g (fun v ->
      Alcotest.check status_t "inconsistent" TL.Inconsistent (TL.status g lab v))

let test_gt_children_and_parent () =
  let depth = 2 in
  let g, lab = TL.of_complete_binary_tree ~depth in
  (match TL.gt_children g lab 0 with
  | Some (l, r) ->
      Alcotest.(check int) "left child" 1 l;
      Alcotest.(check int) "right child" 2 r
  | None -> Alcotest.fail "root should be internal");
  Alcotest.(check (option int)) "child's parent" (Some 0) (TL.gt_parent g lab 1);
  Alcotest.(check (option int)) "root has no gt parent" None (TL.gt_parent g lab 0)

let test_broken_child_pointer_demotes () =
  let depth = 2 in
  let g, lab = TL.of_complete_binary_tree ~depth in
  let lab = TL.copy lab in
  (* Break node 1's left-child reciprocation: make child 3's parent ⊥.
     Node 1 stops being internal, but its own parent (the root) is still
     internal, so node 1 is demoted to a leaf (Definition 3.3). *)
  lab.TL.parent.{3} <- TL.bot;
  Alcotest.check status_t "node 1 demoted to leaf" TL.Leaf (TL.status g lab 1);
  (* Node 3 itself: not internal, parent pointer is ⊥ -> inconsistent. *)
  Alcotest.check status_t "node 3 inconsistent" TL.Inconsistent (TL.status g lab 3);
  (* Node 1's children 3,4: node 4's parent is 1, which is not internal
     any more, so node 4 is inconsistent too. *)
  Alcotest.check status_t "node 4 inconsistent" TL.Inconsistent (TL.status g lab 4)

let test_status_requires_distinct_children () =
  let g = Builder.path 3 in
  (* Node 1 (middle) claims both children via the same port. *)
  let lab = TL.make ~n:3 in
  lab.TL.left.{1} <- 1;
  lab.TL.right.{1} <- 1;
  lab.TL.parent.{0} <- 1;
  Alcotest.check status_t "same-port children rejected" TL.Inconsistent (TL.status g lab 1)

let test_random_tree_labeling_consistent () =
  let g, lab = TL.of_random_binary_tree ~n:31 ~rng:(Splitmix.create 3L) in
  Graph.iter_nodes g (fun v ->
      Alcotest.(check bool) "consistent" true (TL.is_consistent g lab v))

let test_gt_nodes_excludes_inconsistent () =
  let depth = 2 in
  let g, lab = TL.of_complete_binary_tree ~depth in
  let lab = TL.copy lab in
  lab.TL.parent.{3} <- TL.bot;
  let gt = TL.gt_nodes g lab in
  Alcotest.(check bool) "node 3 not in GT" false (List.mem 3 gt)

let prop_random_tree_status_partition =
  QCheck.Test.make ~name:"random trees: every node internal xor leaf, never inconsistent"
    ~count:30
    QCheck.(int_range 3 101)
    (fun n ->
      let g, lab = TL.of_random_binary_tree ~n ~rng:(Splitmix.create (Int64.of_int n)) in
      Graph.fold_nodes g ~init:true ~f:(fun acc v ->
          acc
          &&
          match TL.status g lab v with
          | TL.Internal -> Graph.degree g v >= 2
          | TL.Leaf -> true
          | TL.Inconsistent -> false))

let suites =
  [
    ( "graph:core",
      [
        Alcotest.test_case "path structure" `Quick test_path_structure;
        Alcotest.test_case "ports inverse-consistent" `Quick test_ports_are_inverse_consistent;
        Alcotest.test_case "invalid port raises" `Quick test_invalid_port_raises;
        Alcotest.test_case "rejects asymmetric" `Quick test_rejects_asymmetric;
        Alcotest.test_case "rejects self-loop" `Quick test_rejects_self_loop;
        Alcotest.test_case "rejects duplicate ids" `Quick test_rejects_duplicate_ids;
        Alcotest.test_case "id lookup" `Quick test_ids_and_lookup;
        Alcotest.test_case "shuffle ids" `Quick test_shuffle_ids_is_permutation;
        Alcotest.test_case "edges count" `Quick test_edges_count;
        Alcotest.test_case "disjoint union" `Quick test_disjoint_union;
        Alcotest.test_case "attach" `Quick test_attach;
        Alcotest.test_case "port_to non-neighbor" `Quick test_port_to_non_neighbor;
        QCheck_alcotest.to_alcotest prop_port_to_inverts_neighbor;
        QCheck_alcotest.to_alcotest prop_iter_fold_neighbors_agree;
      ] );
    ( "graph:builders",
      [
        Alcotest.test_case "cycle orientation" `Quick test_cycle_orientation;
        Alcotest.test_case "complete tree shape" `Quick test_complete_tree_shape;
        Alcotest.test_case "complete tree ports" `Quick test_complete_tree_ports;
        Alcotest.test_case "random tree binary" `Quick test_random_tree_all_binary;
      ] );
    ( "graph:bfs",
      [
        Alcotest.test_case "distances path" `Quick test_bfs_distances_path;
        Alcotest.test_case "disconnected" `Quick test_bfs_disconnected;
        Alcotest.test_case "ball radius" `Quick test_ball_radius;
        Alcotest.test_case "diameter" `Quick test_diameter;
        QCheck_alcotest.to_alcotest prop_bfs_triangle_inequality;
      ] );
    ( "graph:tree-labels",
      [
        Alcotest.test_case "complete tree statuses" `Quick test_complete_tree_labeling_statuses;
        Alcotest.test_case "all-bot inconsistent" `Quick test_all_bot_labeling_inconsistent;
        Alcotest.test_case "gt children/parent" `Quick test_gt_children_and_parent;
        Alcotest.test_case "broken pointer demotes" `Quick test_broken_child_pointer_demotes;
        Alcotest.test_case "distinct children required" `Quick test_status_requires_distinct_children;
        Alcotest.test_case "random tree consistent" `Quick test_random_tree_labeling_consistent;
        Alcotest.test_case "gt excludes inconsistent" `Quick test_gt_nodes_excludes_inconsistent;
        QCheck_alcotest.to_alcotest prop_random_tree_status_partition;
      ] );
  ]
