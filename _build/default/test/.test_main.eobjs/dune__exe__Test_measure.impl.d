test/test_measure.ml: Alcotest Float List Vc_graph Vc_lcl Vc_measure Vc_model Volcomp
