module Json = Vc_obs.Json
module Splitmix = Vc_rng.Splitmix
module Registry = Vc_check.Registry

type config = {
  clients : int;
  requests : int;
  mix : (string * int) list;
  seed : int64;
  deadline_ms : int option;
  verify : bool;
  shutdown : bool;
}

let kinds = [ "solve"; "probe"; "trace"; "warm"; "list"; "stats" ]
let default_mix = [ ("solve", 1); ("probe", 4); ("trace", 1); ("list", 1); ("stats", 1) ]

let parse_mix s =
  let parse_item item =
    match String.split_on_char ':' (String.trim item) with
    | [ k ] when List.mem k kinds -> Ok (k, 1)
    | [ k; w ] when List.mem k kinds -> (
        match int_of_string_opt w with
        | Some w when w > 0 -> Ok (k, w)
        | _ -> Error (Printf.sprintf "bad weight %S for kind %s" w k))
    | k :: _ -> Error (Printf.sprintf "unknown request kind %S" k)
    | [] -> Error "empty mix item"
  in
  let items = List.filter (fun s -> String.trim s <> "") (String.split_on_char ',' s) in
  if items = [] then Error "empty mix"
  else
    List.fold_left
      (fun acc item ->
        match (acc, parse_item item) with
        | Ok items, Ok it -> Ok (items @ [ it ])
        | (Error _ as e), _ | _, (Error _ as e) -> e)
      (Ok []) items

type percentiles = {
  l_count : int;
  l_p50_us : int option;
  l_p95_us : int option;
  l_p99_us : int option;
  l_max_us : int;
}

type summary = {
  s_clients : int;
  s_requests : int;
  s_ok : int;
  s_errors : (string * int) list;
  s_mismatches : int;
  s_wall_s : float;
  s_latency : (string * percentiles) list;
  s_server_stats : Json.t option;
}

(* --- deterministic request plan ---------------------------------------------- *)

(* Two derived instance seeds: more than one so the session cache sees
   distinct keys (hits *and* evictions under a small capacity), few
   enough that instances stay warm across the run. *)
let instance_seed seed variant = Splitmix.mix (Int64.add seed (Int64.of_int (variant + 1)))

let smallest sizes = List.fold_left min (List.hd sizes) sizes

let gen_plan twin entries ~mix ~seed ~requests =
  let rng = Splitmix.create seed in
  let total_weight = List.fold_left (fun a (_, w) -> a + w) 0 mix in
  let pick_kind () =
    let r = Splitmix.int rng ~bound:total_weight in
    let rec go acc = function
      | [] -> assert false
      | (k, w) :: rest -> if r < acc + w then k else go (acc + w) rest
    in
    go 0 mix
  in
  let n_entries = List.length entries in
  let pick_instance () =
    let e = List.nth entries (Splitmix.int rng ~bound:n_entries) in
    let size = smallest e.Registry.quick_sizes in
    let seed = instance_seed seed (Splitmix.int rng ~bound:2) in
    (e.Registry.name, size, seed)
  in
  List.init requests (fun _ ->
      match pick_kind () with
      | "solve" ->
          let problem, size, seed = pick_instance () in
          Protocol.Solve { problem; size; seed }
      | "warm" ->
          let problem, size, seed = pick_instance () in
          Protocol.Warm { problem; size; seed }
      | ("probe" | "trace") as k ->
          let problem, size, seed = pick_instance () in
          let n =
            match Handler.instance_n twin ~problem ~size ~seed with
            | Ok n -> n
            | Error (_, msg) -> failwith ("loadgen plan: " ^ msg)
          in
          let origin = Splitmix.int rng ~bound:n in
          if k = "probe" then Protocol.Probe { problem; size; seed; origin }
          else Protocol.Trace { problem; size; seed; origin }
      | "list" -> Protocol.List
      | "stats" -> Protocol.Stats
      | _ -> assert false)

(* --- wire helpers ------------------------------------------------------------- *)

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

exception Fail of string

let rec read_frame fd dec buf =
  match Protocol.next_frame dec with
  | Ok (Some body) -> body
  | Error msg -> raise (Fail ("reply framing: " ^ msg))
  | Ok None -> (
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> raise (Fail "server closed the connection mid-reply")
      | n ->
          Protocol.feed dec buf n;
          read_frame fd dec buf)

let read_reply fd dec buf =
  let body = read_frame fd dec buf in
  match Json.parse body with
  | Error msg -> raise (Fail ("reply is not JSON: " ^ msg))
  | Ok v -> (
      match Protocol.reply_of_json v with
      | Error msg -> raise (Fail ("bad reply: " ^ msg))
      | Ok r -> r)

let send fd req = write_all fd (Protocol.frame (Json.to_string (Protocol.request_to_json req)))

(* --- tallies shared by both loops --------------------------------------------- *)

type tally = {
  mutable t_ok : int;
  mutable t_mismatches : int;
  t_errors : (string, int) Hashtbl.t;
  t_latencies : (string, int list ref) Hashtbl.t;
}

let tally_create () =
  { t_ok = 0; t_mismatches = 0; t_errors = Hashtbl.create 8; t_latencies = Hashtbl.create 8 }

let note_latency t kind us =
  let cell =
    match Hashtbl.find_opt t.t_latencies kind with
    | Some c -> c
    | None ->
        let c = ref [] in
        Hashtbl.replace t.t_latencies kind c;
        c
  in
  cell := us :: !cell

let note_error t code =
  let key = Protocol.code_to_string code in
  Hashtbl.replace t.t_errors key (1 + Option.value (Hashtbl.find_opt t.t_errors key) ~default:0)

(* A warm reply's [source] reports which path made the session resident
   (fresh build, snapshot load, or already-cached) — server-local
   scheduling state that a sequential twin cannot mirror once concurrent
   clients race to warm the same key, so it is excluded from the byte
   comparison.  The deterministic single-client smokes assert on it
   directly. *)
let strip_source = function
  | Json.Obj ms -> Json.Obj (List.filter (fun (k, _) -> k <> "source") ms)
  | j -> j

let verify_payload twin t q payload =
  match Protocol.kind q with
  | "stats" ->
      if Json.member payload "cache" = None || Json.member payload "metrics" = None then
        t.t_mismatches <- t.t_mismatches + 1
  | kind -> (
      match Handler.handle twin q with
      | Ok expected ->
          let got, want =
            if kind = "warm" then (strip_source payload, strip_source expected)
            else (payload, expected)
          in
          if Json.to_string got <> Json.to_string want then
            t.t_mismatches <- t.t_mismatches + 1
      | Error _ -> t.t_mismatches <- t.t_mismatches + 1)

let sorted_assoc tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Nearest-rank percentiles; with fewer than 3 samples the upper ranks
   all collapse onto the same observation, so we report no percentiles
   at all rather than fabricate them (max is still meaningful). *)
let percentiles_of samples =
  let a = Array.of_list samples in
  Array.sort compare a;
  let n = Array.length a in
  let rank q =
    if n < 3 then None
    else Some a.(max 0 (min (n - 1) (int_of_float (ceil (q *. float_of_int n /. 100.)) - 1)))
  in
  {
    l_count = n;
    l_p50_us = rank 50.;
    l_p95_us = rank 95.;
    l_p99_us = rank 99.;
    l_max_us = a.(n - 1);
  }

(* --- the closed loop ---------------------------------------------------------- *)

type client = {
  fd : Unix.file_descr;
  dec : Protocol.decoder;
  mutable todo : (int * Protocol.query) list;  (** (request id, query), in order *)
  mutable inflight : (int * Protocol.query * float) option;
}

let run ~connect cfg =
  if cfg.clients < 1 then invalid_arg "Loadgen.run: clients must be >= 1";
  if cfg.requests < 0 then invalid_arg "Loadgen.run: requests must be >= 0";
  if cfg.mix = [] || List.exists (fun (_, w) -> w <= 0) cfg.mix then
    invalid_arg "Loadgen.run: mix must be non-empty with positive weights";
  let twin = Handler.create () in
  let entries = Registry.all () in
  match
    let plan = gen_plan twin entries ~mix:cfg.mix ~seed:cfg.seed ~requests:cfg.requests in
    let clients =
      List.init cfg.clients (fun _ -> { fd = connect (); dec = Protocol.decoder (); todo = []; inflight = None })
    in
    let carr = Array.of_list clients in
    List.iteri
      (fun i q ->
        let c = carr.(i mod cfg.clients) in
        c.todo <- c.todo @ [ (i + 1, q) ])
      plan;
    let buf = Bytes.create 65536 in
    let tally = tally_create () in
    let settle c =
      match c.inflight with
      | None -> ()
      | Some (id, q, t0) ->
          let r = read_reply c.fd c.dec buf in
          note_latency tally (Protocol.kind q)
            (int_of_float (Float.max 0. ((Unix.gettimeofday () -. t0) *. 1e6)));
          c.inflight <- None;
          if r.Protocol.r_id <> id then
            raise (Fail (Printf.sprintf "reply id %d for request %d" r.Protocol.r_id id));
          (match r.Protocol.body with
          | Ok payload ->
              tally.t_ok <- tally.t_ok + 1;
              if cfg.verify then verify_payload twin tally q payload
          | Error (code, _) -> note_error tally code)
    in
    let t_start = Unix.gettimeofday () in
    while Array.exists (fun c -> c.todo <> []) carr do
      (* write phase: every client with work sends before anyone reads,
         so concurrent requests reach the server as one batch *)
      Array.iter
        (fun c ->
          match c.todo with
          | [] -> ()
          | (id, q) :: rest ->
              c.todo <- rest;
              let t0 = Unix.gettimeofday () in
              send c.fd { Protocol.id; deadline_ms = cfg.deadline_ms; query = q };
              c.inflight <- Some (id, q, t0))
        carr;
      Array.iter settle carr
    done;
    let wall = Unix.gettimeofday () -. t_start in
    (* control requests on client 0: a stats snapshot for the report,
       then (optionally) shutdown; neither counts toward the summary *)
    let c0 = carr.(0) in
    let control id query =
      send c0.fd { Protocol.id; deadline_ms = None; query };
      read_reply c0.fd c0.dec buf
    in
    let server_stats =
      match (control (cfg.requests + 1) Protocol.Stats).Protocol.body with
      | Ok payload -> Some payload
      | Error _ -> None
    in
    if cfg.shutdown then
      ignore (control (cfg.requests + 2) Protocol.Shutdown : Protocol.reply);
    Array.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) carr;
    {
      s_clients = cfg.clients;
      s_requests = cfg.requests;
      s_ok = tally.t_ok;
      s_errors = sorted_assoc tally.t_errors Fun.id;
      s_mismatches = tally.t_mismatches;
      s_wall_s = wall;
      s_latency = sorted_assoc tally.t_latencies (fun l -> percentiles_of !l);
      s_server_stats = server_stats;
    }
  with
  | summary -> Ok summary
  | exception Fail msg -> Error msg
  | exception Failure msg -> Error msg
  | exception Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))

(* --- the open loop ------------------------------------------------------------ *)

type open_config = {
  o_rate : float;  (** target arrival rate, requests/s *)
  o_requests : int;
  o_conns : int option;
  o_mix : (string * int) list;
  o_seed : int64;
  o_verify : bool;
  o_shutdown : bool;
  o_prewarm : bool;
}

type open_summary = {
  os_rate : float;
  os_achieved : float;
  os_conns : int;
  os_requests : int;
  os_ok : int;
  os_shed : int;
  os_worker_lost : int;
  os_errors : (string * int) list;
  os_mismatches : int;
  os_wall_s : float;
  os_latency : (string * percentiles) list;
  os_queue_depth : (int * int) list;
  os_prewarm : (int * int) option;
      (** [(sessions, cold_starts)] when [--prewarm] ran: distinct
          sessions warmed before the measured phase, and how many of
          them were cold (the server had to build or snapshot-load, the
          stall the first measured request would otherwise have eaten) *)
  os_server_stats : Json.t option;
}

type oconn = {
  oc_fd : Unix.file_descr;
  oc_dec : Protocol.decoder;
  oc_out : Buffer.t;
  mutable oc_off : int;  (** bytes of [oc_out] already written *)
  oc_pending : (int, Protocol.query * float) Hashtbl.t;
}

(* How many shards does the server report?  One connection per shard
   keeps a sharded tier's per-worker channels independently busy; a
   single-process server reports no shards and gets one connection. *)
let discover_shards ~connect buf =
  let fd = connect () in
  let dec = Protocol.decoder () in
  send fd { Protocol.id = 1; deadline_ms = None; query = Protocol.Stats };
  let r = read_reply fd dec buf in
  (try Unix.close fd with Unix.Unix_error _ -> ());
  match r.Protocol.body with
  | Ok payload -> (
      match Json.member payload "shards" with
      | Some (Json.List rows) -> max 1 (List.length rows)
      | _ -> 1)
  | Error _ -> 1

let shard_inflight stats =
  match Option.bind stats (fun p -> Json.member p "shards") with
  | Some (Json.List rows) ->
      List.filter_map
        (fun row ->
          match
            ( Option.bind (Json.member row "shard") Json.to_int,
              Option.bind (Json.member row "inflight") Json.to_int )
          with
          | Some s, Some i -> Some (s, i)
          | _ -> None)
        rows
  | _ -> []

let run_open ~connect cfg =
  if cfg.o_rate <= 0. then invalid_arg "Loadgen.run_open: rate must be > 0";
  if cfg.o_requests < 0 then invalid_arg "Loadgen.run_open: requests must be >= 0";
  if cfg.o_mix = [] || List.exists (fun (_, w) -> w <= 0) cfg.o_mix then
    invalid_arg "Loadgen.run_open: mix must be non-empty with positive weights";
  (match cfg.o_conns with
  | Some c when c < 1 -> invalid_arg "Loadgen.run_open: conns must be >= 1"
  | _ -> ());
  let twin = Handler.create () in
  let entries = Registry.all () in
  let buf = Bytes.create 65536 in
  match
    let plan =
      gen_plan twin entries ~mix:cfg.o_mix ~seed:cfg.o_seed ~requests:cfg.o_requests
      |> Array.of_list
    in
    let n_conns =
      match cfg.o_conns with Some c -> c | None -> discover_shards ~connect buf
    in
    let conns =
      Array.init n_conns (fun _ ->
          let fd = connect () in
          Unix.set_nonblock fd;
          {
            oc_fd = fd;
            oc_dec = Protocol.decoder ();
            oc_out = Buffer.create 4096;
            oc_off = 0;
            oc_pending = Hashtbl.create 16;
          })
    in
    let tally = tally_create () in
    let shed = ref 0 in
    let lost = ref 0 in
    (* Warm every session the plan will touch over a blocking side
       connection, so the measured phase never charges instance
       construction to the first unlucky request of a session.  Replies
       say where the instance came from; anything other than "cache"
       was a cold start the measured phase just dodged. *)
    let prewarm =
      if not cfg.o_prewarm then None
      else begin
        let seen = Hashtbl.create 16 in
        let keys =
          Array.to_list plan
          |> List.filter_map (fun q ->
                 match q with
                 | Protocol.Solve { problem; size; seed }
                 | Protocol.Warm { problem; size; seed }
                 | Protocol.Probe { problem; size; seed; _ }
                 | Protocol.Trace { problem; size; seed; _ } ->
                     if Hashtbl.mem seen (problem, size, seed) then None
                     else begin
                       Hashtbl.replace seen (problem, size, seed) ();
                       Some (problem, size, seed)
                     end
                 | Protocol.List | Protocol.Stats | Protocol.Shutdown -> None)
        in
        let fd = connect () in
        let dec = Protocol.decoder () in
        let cold = ref 0 in
        List.iteri
          (fun i (problem, size, seed) ->
            send fd
              {
                Protocol.id = i + 1;
                deadline_ms = None;
                query = Protocol.Warm { problem; size; seed };
              };
            match (read_reply fd dec buf).Protocol.body with
            | Ok payload -> (
                match Option.bind (Json.member payload "source") Json.to_str with
                | Some "cache" | None -> ()
                | Some _ -> incr cold)
            | Error _ -> ())
          keys;
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Some (List.length keys, !cold)
      end
    in
    (* exponential inter-arrivals: a Poisson process at o_rate, derived
       deterministically from the seed (offset so the arrival stream is
       independent of the request plan's stream) *)
    let arr_rng = Splitmix.create (Splitmix.mix (Int64.add cfg.o_seed 7L)) in
    let next_gap () =
      let u = Splitmix.float arr_rng in
      -.log (1. -. u) /. cfg.o_rate
    in
    let total = Array.length plan in
    let sent = ref 0 in
    let t_start = Unix.gettimeofday () in
    let next_arrival = ref (t_start +. next_gap ()) in
    let t_last = ref t_start in
    let settle_reply c (r : Protocol.reply) =
      match Hashtbl.find_opt c.oc_pending r.Protocol.r_id with
      | None -> raise (Fail (Printf.sprintf "unexpected reply id %d" r.Protocol.r_id))
      | Some (q, t0) ->
          Hashtbl.remove c.oc_pending r.Protocol.r_id;
          let now = Unix.gettimeofday () in
          t_last := now;
          (* latency from the *scheduled* arrival, so client-side backlog
             (coordinated omission) shows up in the tail, not nowhere *)
          note_latency tally (Protocol.kind q) (int_of_float (Float.max 0. ((now -. t0) *. 1e6)));
          (match r.Protocol.body with
          | Ok payload ->
              tally.t_ok <- tally.t_ok + 1;
              if cfg.o_verify then verify_payload twin tally q payload
          | Error (code, _) ->
              (match code with
              | Protocol.Overloaded -> incr shed
              | Protocol.Worker_lost -> incr lost
              | _ -> ());
              note_error tally code)
    in
    let rec drain c =
      match Protocol.next_frame c.oc_dec with
      | Ok None -> ()
      | Error msg -> raise (Fail ("reply framing: " ^ msg))
      | Ok (Some body) ->
          (match Result.bind (Json.parse body) Protocol.reply_of_json with
          | Error msg -> raise (Fail ("bad reply: " ^ msg))
          | Ok r -> settle_reply c r);
          drain c
    in
    let inflight () =
      Array.fold_left (fun a c -> a + Hashtbl.length c.oc_pending) 0 conns
    in
    while !sent < total || inflight () > 0 do
      let now = Unix.gettimeofday () in
      (* enqueue every arrival that is due; the connection is chosen
         round-robin and the frame goes to its out-buffer, never a
         blocking write *)
      while !sent < total && !next_arrival <= now do
        let id = !sent + 1 in
        let q = plan.(!sent) in
        let c = conns.(!sent mod n_conns) in
        Buffer.add_string c.oc_out
          (Protocol.frame
             (Json.to_string
                (Protocol.request_to_json { Protocol.id; deadline_ms = None; query = q })));
        Hashtbl.replace c.oc_pending id (q, !next_arrival);
        incr sent;
        next_arrival := !next_arrival +. next_gap ()
      done;
      let timeout =
        if !sent < total then Float.max 0. (Float.min 0.05 (!next_arrival -. now)) else 0.05
      in
      let rd = Array.to_list (Array.map (fun c -> c.oc_fd) conns) in
      let wr =
        Array.to_list conns
        |> List.filter_map (fun c ->
               if Buffer.length c.oc_out > c.oc_off then Some c.oc_fd else None)
      in
      let readable, writable, _ = Unix.select rd wr [] timeout in
      Array.iter
        (fun c ->
          if List.mem c.oc_fd writable then begin
            let s = Buffer.contents c.oc_out in
            let len = String.length s in
            (try
               while c.oc_off < len do
                 c.oc_off <- c.oc_off + Unix.write_substring c.oc_fd s c.oc_off (len - c.oc_off)
               done
             with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
            if c.oc_off >= len then begin
              Buffer.clear c.oc_out;
              c.oc_off <- 0
            end
          end)
        conns;
      Array.iter
        (fun c ->
          if List.mem c.oc_fd readable then
            match Unix.read c.oc_fd buf 0 (Bytes.length buf) with
            | 0 -> raise (Fail "server closed the connection mid-run")
            | n ->
                Protocol.feed c.oc_dec buf n;
                drain c
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ())
        conns
    done;
    let wall = Float.max 1e-9 (!t_last -. t_start) in
    (* control requests go over a blocking connection of their own *)
    let c0 = conns.(0) in
    Unix.clear_nonblock c0.oc_fd;
    let control id query =
      send c0.oc_fd { Protocol.id; deadline_ms = None; query };
      read_reply c0.oc_fd c0.oc_dec buf
    in
    let server_stats =
      match (control (total + 1) Protocol.Stats).Protocol.body with
      | Ok payload -> Some payload
      | Error _ -> None
    in
    if cfg.o_shutdown then ignore (control (total + 2) Protocol.Shutdown : Protocol.reply);
    Array.iter (fun c -> try Unix.close c.oc_fd with Unix.Unix_error _ -> ()) conns;
    {
      os_rate = cfg.o_rate;
      os_achieved = (if total = 0 then 0. else float_of_int total /. wall);
      os_conns = n_conns;
      os_requests = total;
      os_ok = tally.t_ok;
      os_shed = !shed;
      os_worker_lost = !lost;
      os_errors = sorted_assoc tally.t_errors Fun.id;
      os_mismatches = tally.t_mismatches;
      os_wall_s = wall;
      os_latency = sorted_assoc tally.t_latencies (fun l -> percentiles_of !l);
      os_queue_depth = shard_inflight server_stats;
      os_prewarm = prewarm;
      os_server_stats = server_stats;
    }
  with
  | summary -> Ok summary
  | exception Fail msg -> Error msg
  | exception Failure msg -> Error msg
  | exception Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))

(* --- reporting ---------------------------------------------------------------- *)

let pct_json = function Some v -> Json.Int v | None -> Json.Null

let latency_json latency =
  Json.Obj
    (List.map
       (fun (kind, p) ->
         ( kind,
           Json.Obj
             [
               ("count", Json.Int p.l_count);
               ("p50", pct_json p.l_p50_us);
               ("p95", pct_json p.l_p95_us);
               ("p99", pct_json p.l_p99_us);
               ("max", Json.Int p.l_max_us);
             ] ))
       latency)

let summary_to_json s =
  Json.Obj
    [
      ( "loadgen",
        Json.Obj
          [
            ("clients", Json.Int s.s_clients);
            ("requests", Json.Int s.s_requests);
            ("ok", Json.Int s.s_ok);
            ("mismatches", Json.Int s.s_mismatches);
            ("wall_s", Json.Float s.s_wall_s);
            ("errors", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.s_errors));
            ("latency_us", latency_json s.s_latency);
            ( "server_stats",
              match s.s_server_stats with Some j -> j | None -> Json.Null );
          ] );
    ]

let open_summary_to_json s =
  Json.Obj
    [
      ( "loadgen_open",
        Json.Obj
          [
            ("rate_rps", Json.Float s.os_rate);
            ("achieved_rps", Json.Float s.os_achieved);
            ("conns", Json.Int s.os_conns);
            ("requests", Json.Int s.os_requests);
            ("ok", Json.Int s.os_ok);
            ("shed", Json.Int s.os_shed);
            ("worker_lost", Json.Int s.os_worker_lost);
            ("mismatches", Json.Int s.os_mismatches);
            ("wall_s", Json.Float s.os_wall_s);
            ("errors", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.os_errors));
            ("latency_us", latency_json s.os_latency);
            ( "queue_depth",
              Json.List
                (List.map
                   (fun (shard, inflight) ->
                     Json.Obj [ ("shard", Json.Int shard); ("inflight", Json.Int inflight) ])
                   s.os_queue_depth) );
            ( "prewarm",
              match s.os_prewarm with
              | None -> Json.Null
              | Some (sessions, cold) ->
                  Json.Obj [ ("sessions", Json.Int sessions); ("cold_starts", Json.Int cold) ]
            );
            ( "server_stats",
              match s.os_server_stats with Some j -> j | None -> Json.Null );
          ] );
    ]

let pp_pct ppf = function
  | Some v -> Format.fprintf ppf "%6d" v
  | None -> Format.fprintf ppf "%6s" "-"

let pp_latency ppf latency =
  List.iter
    (fun (kind, p) ->
      Format.fprintf ppf "  %-8s count %-5d p50 %a us   p95 %a us   p99 %a us   max %6d us@."
        kind p.l_count pp_pct p.l_p50_us pp_pct p.l_p95_us pp_pct p.l_p99_us p.l_max_us)
    latency

let pp_summary ppf s =
  Format.fprintf ppf "loadgen: %d requests over %d client(s) in %.3f s@." s.s_requests
    s.s_clients s.s_wall_s;
  Format.fprintf ppf "  ok %d, errors %d, mismatches %d@." s.s_ok
    (List.fold_left (fun a (_, c) -> a + c) 0 s.s_errors)
    s.s_mismatches;
  List.iter (fun (code, c) -> Format.fprintf ppf "  error %-18s %d@." code c) s.s_errors;
  pp_latency ppf s.s_latency

let pp_open_summary ppf s =
  Format.fprintf ppf
    "loadgen (open loop): %d requests at %.0f rps target over %d conn(s) in %.3f s@."
    s.os_requests s.os_rate s.os_conns s.os_wall_s;
  Format.fprintf ppf "  achieved %.1f rps, ok %d, shed %d, worker_lost %d, mismatches %d@."
    s.os_achieved s.os_ok s.os_shed s.os_worker_lost s.os_mismatches;
  (match s.os_prewarm with
  | None -> ()
  | Some (sessions, cold) ->
      Format.fprintf ppf "  prewarmed %d session(s), %d cold start(s) absorbed@." sessions cold);
  List.iter (fun (code, c) -> Format.fprintf ppf "  error %-18s %d@." code c) s.os_errors;
  (match s.os_queue_depth with
  | [] -> ()
  | qs ->
      Format.fprintf ppf "  final queue depth:";
      List.iter (fun (shard, d) -> Format.fprintf ppf " shard %d: %d" shard d) qs;
      Format.fprintf ppf "@.");
  pp_latency ppf s.os_latency
