module Graph = Vc_graph.Graph
module Builder = Vc_graph.Builder
module TL = Vc_graph.Tree_labels
module Splitmix = Vc_rng.Splitmix
module LC = Volcomp.Leaf_coloring
module BT = Volcomp.Balanced_tree
module Hy = Volcomp.Hybrid_thc
module SO = Volcomp.Sinkless

(* --- graph specs --------------------------------------------------------- *)

type shape = Path | Cycle | Complete_tree | Random_tree | Cubic

let all_shapes = [ Path; Cycle; Complete_tree; Random_tree; Cubic ]

let pp_shape ppf = function
  | Path -> Fmt.string ppf "path"
  | Cycle -> Fmt.string ppf "cycle"
  | Complete_tree -> Fmt.string ppf "complete-tree"
  | Random_tree -> Fmt.string ppf "random-tree"
  | Cubic -> Fmt.string ppf "cubic"

type graph_spec = {
  shape : shape;
  size : int;
  g_seed : int64;
}

let pp_spec ppf s = Fmt.pf ppf "%a(size=%d, seed=%Ld)" pp_shape s.shape s.size s.g_seed

let min_size_of = function
  | Path -> 1
  | Cycle -> 3
  | Complete_tree -> 3
  | Random_tree -> 3
  | Cubic -> 8

let build spec =
  let size = max (min_size_of spec.shape) spec.size in
  match spec.shape with
  | Path -> Builder.path size
  | Cycle -> Builder.cycle size
  | Complete_tree ->
      (* the largest complete tree with at most [size] nodes *)
      let depth = max 1 (Volcomp.Probe_tree.log2_ceil (size + 2) - 1) in
      Builder.complete_binary_tree ~depth
  | Random_tree -> Builder.random_binary_tree ~n:size ~rng:(Splitmix.create spec.g_seed)
  | Cubic -> SO.random_cubic ~n:size ~seed:spec.g_seed

let spec ?(shapes = all_shapes) ?(min_size = 8) ?(max_size = 64) () =
  if shapes = [] then invalid_arg "Gen.spec: shapes must be non-empty";
  let gen =
    QCheck.Gen.map3
      (fun i size g_seed -> { shape = List.nth shapes i; size; g_seed })
      (QCheck.Gen.int_range 0 (List.length shapes - 1))
      (QCheck.Gen.int_range min_size max_size)
      QCheck.Gen.int64
  in
  (* shrink towards the smallest same-shape, same-seed graph *)
  let shrink spec yield =
    let s = ref (spec.size / 2) in
    while !s >= min_size do
      yield { spec with size = !s };
      s := !s / 2
    done
  in
  QCheck.make gen ~print:(Fmt.str "%a" pp_spec) ~shrink

(* --- labeled instances ---------------------------------------------------- *)

let colored_tree ~n ~seed = LC.random_instance ~n ~seed

let pseudo_tree ~cycle_len ~seed = LC.cycle_instance ~cycle_len ~seed

(* --- garbage labelings ----------------------------------------------------- *)

let garbage_ptr rng deg = Splitmix.int rng ~bound:(deg + 3)

let garbage_color rng = if Splitmix.bool rng then TL.Red else TL.Blue

let garbage_graph rng =
  if Splitmix.bool rng then
    SO.random_cubic ~n:(20 + Splitmix.int rng ~bound:30) ~seed:(Splitmix.next rng)
  else Builder.random_binary_tree ~n:(21 + (2 * Splitmix.int rng ~bound:15)) ~rng

let garbage_leaf_input rng =
  {
    LC.parent = garbage_ptr rng 4;
    left = garbage_ptr rng 4;
    right = garbage_ptr rng 4;
    color = garbage_color rng;
  }

let garbage_balanced_input rng =
  {
    BT.parent = garbage_ptr rng 4;
    left = garbage_ptr rng 4;
    right = garbage_ptr rng 4;
    left_nbr = garbage_ptr rng 4;
    right_nbr = garbage_ptr rng 4;
  }

let garbage_hybrid_input rng =
  {
    Hy.parent = garbage_ptr rng 4;
    left = garbage_ptr rng 4;
    right = garbage_ptr rng 4;
    left_nbr = garbage_ptr rng 4;
    right_nbr = garbage_ptr rng 4;
    color = garbage_color rng;
    level = Splitmix.int rng ~bound:5;
  }
