module TL = Vc_graph.Tree_labels
module Graph = Vc_graph.Graph
module Congest = Vc_model.Congest
module LC = Leaf_coloring

type ptr_ids = {
  p_parent : int option;
  p_left : int option;
  p_right : int option;
}

type message =
  | Hello of int
  | Pointers of ptr_ids
  | Internality of bool
  | Report of TL.color  (** the sender's nearest-leaf color *)

type nbr = {
  mutable nid : int option;
  mutable ptrs : ptr_ids option;
  mutable internal : bool option;
}

type state = {
  me : LC.node_input;
  my_id : int;
  degree : int;
  n : int;
  nbrs : nbr array;
  mutable round_no : int;
  mutable my_internal : bool;
  mutable my_status : TL.status;
  mutable report : TL.color option;  (** first nearest-leaf color heard *)
  mutable relayed : bool;
}

let valid st p = p <> TL.bot && p >= 1 && p <= st.degree

let nbr st p = st.nbrs.(p - 1)

let nbr_id st p = if valid st p then (nbr st p).nid else None

let broadcast st msg = List.init st.degree (fun i -> (i + 1, msg))

let my_ptr_ids st =
  {
    p_parent = nbr_id st st.me.LC.parent;
    p_left = nbr_id st st.me.LC.left;
    p_right = nbr_id st st.me.LC.right;
  }

let reciprocated_child st p =
  valid st p
  && (match (nbr st p).ptrs with
     | Some t -> t.p_parent = Some st.my_id
     | None -> false)

let compute_internal st =
  let i = st.me in
  valid st i.LC.left && valid st i.LC.right && i.LC.left <> i.LC.right
  && i.LC.parent <> i.LC.left && i.LC.parent <> i.LC.right
  && reciprocated_child st i.LC.left
  && reciprocated_child st i.LC.right

let compute_status st =
  if st.my_internal then TL.Internal
  else if valid st st.me.LC.parent && (nbr st st.me.LC.parent).internal = Some true then TL.Leaf
  else TL.Inconsistent

let gt_parent_port st =
  let p = st.me.LC.parent in
  if not (valid st p) then None
  else
    match ((nbr st p).internal, (nbr st p).ptrs) with
    | Some true, Some t ->
        if t.p_left = Some st.my_id || t.p_right = Some st.my_id then Some p else None
    | (Some _ | None), _ -> None

let relay st =
  match (st.report, gt_parent_port st) with
  | Some color, Some p when not st.relayed ->
      st.relayed <- true;
      [ (p, Report color) ]
  | Some _, None ->
      st.relayed <- true;
      []
  | Some _, Some _ | None, _ -> []

let algorithm () =
  let init ~n ~id ~degree ~input =
    let st =
      {
        me = input;
        my_id = id;
        degree;
        n;
        nbrs = Array.init degree (fun _ -> { nid = None; ptrs = None; internal = None });
        round_no = 0;
        my_internal = false;
        my_status = TL.Inconsistent;
        report = None;
        relayed = false;
      }
    in
    (st, broadcast st (Hello id))
  in
  let round st ~inbox =
    st.round_no <- st.round_no + 1;
    (* prefer the left child's report on simultaneous arrival, mirroring
       the probe solver's left-most tie-break (any choice is valid) *)
    let ordered =
      List.stable_sort
        (fun (p, _) (q, _) ->
          let rank p = if p = st.me.LC.left then 0 else if p = st.me.LC.right then 1 else 2 in
          compare (rank p) (rank q))
        inbox
    in
    List.iter
      (fun (port, msg) ->
        let nb = nbr st port in
        match msg with
        | Hello id -> nb.nid <- Some id
        | Pointers t -> nb.ptrs <- Some t
        | Internality b -> nb.internal <- Some b
        | Report color -> if st.report = None then st.report <- Some color)
      ordered;
    let deadline = 3 + Probe_tree.log2_ceil st.n + 2 in
    let out =
      if st.round_no = 1 then broadcast st (Pointers (my_ptr_ids st))
      else if st.round_no = 2 then begin
        st.my_internal <- compute_internal st;
        broadcast st (Internality st.my_internal)
      end
      else if st.round_no = 3 then begin
        st.my_status <- compute_status st;
        match st.my_status with
        | TL.Leaf | TL.Inconsistent ->
            (* leaves seed the flood towards their G_T parents *)
            st.report <- Some st.me.LC.color;
            relay st
        | TL.Internal -> []
      end
      else relay st
    in
    let decision =
      if st.round_no >= deadline then
        Some
          (match st.my_status with
          | TL.Leaf | TL.Inconsistent -> st.me.LC.color
          | TL.Internal -> (
              match st.report with
              | Some c -> c
              | None ->
                  (* unreachable on well-formed inputs (Lemma 3.8) *)
                  st.me.LC.color))
      else None
    in
    (st, out, decision)
  in
  let message_bits = function
    | Hello _ -> 64
    | Pointers _ -> 3 * 65
    | Internality _ -> 1
    | Report _ -> 1
  in
  { Congest.init; round; message_bits }

let run inst ?(bandwidth = 256) () =
  let g = inst.LC.graph in
  let deadline = 3 + Probe_tree.log2_ceil (Graph.n g) + 4 in
  Congest.run ~graph:g ~input:(LC.input inst) ~bandwidth ~max_rounds:(deadline + 4)
    (algorithm ())
