lib/core/hybrid_thc.ml: Array Balanced_tree Float Fmt Hashtbl Hierarchical_thc List Option Printf Probe_tree Queue Vc_graph Vc_lcl Vc_model Vc_rng
