(* Tests for the auxiliary problems: the class-A and class-B reference
   LCLs (Figures 1-2), the Example 7.6 CONGEST gap, and the Section 7.4
   secret-randomness promise problem. *)

module TL = Vc_graph.Tree_labels
module Graph = Vc_graph.Graph
module Builder = Vc_graph.Builder
module Probe = Vc_model.Probe
module Congest = Vc_model.Congest
module Lcl = Vc_lcl.Lcl
module Randomness = Vc_rng.Randomness
module Trivial = Volcomp.Trivial_lcl
module CC = Volcomp.Cycle_coloring
module Gap = Volcomp.Gap_example
module PL = Volcomp.Promise_leaf
module LC = Volcomp.Leaf_coloring
module Splitmix = Vc_rng.Splitmix

(* --- class A: degree parity ----------------------------------------------- *)

let test_trivial_constant_cost () =
  let g = Builder.complete_binary_tree ~depth:6 in
  let world = Trivial.world g in
  let out = Array.make (Graph.n g) Trivial.Even in
  Graph.iter_nodes g (fun v ->
      let r = Probe.run ~world ~origin:v Trivial.solve.Lcl.solve in
      Alcotest.(check int) "volume 1" 1 r.Probe.volume;
      Alcotest.(check int) "distance 0" 0 r.Probe.distance;
      out.(v) <- Option.get r.Probe.output);
  Alcotest.(check bool) "valid" true
    (Lcl.is_valid Trivial.problem g ~input:(fun _ -> ()) ~output:(fun v -> out.(v)))

(* --- class B: Cole-Vishkin cycle coloring ---------------------------------- *)

let solve_cycle n ~seed =
  let g = Graph.shuffle_ids (Builder.cycle n) ~rng:(Splitmix.create seed) in
  let world = CC.world g in
  let out = Array.make n 0 in
  let worst_vol = ref 0 and worst_dist = ref 0 in
  Graph.iter_nodes g (fun v ->
      let r = Probe.run ~world ~origin:v CC.solve.Lcl.solve in
      worst_vol := max !worst_vol r.Probe.volume;
      worst_dist := max !worst_dist r.Probe.distance;
      out.(v) <- Option.get r.Probe.output);
  (g, out, !worst_vol, !worst_dist)

let test_cycle_coloring_valid () =
  List.iter
    (fun (n, seed) ->
      let g, out, _, _ = solve_cycle n ~seed in
      match Lcl.check CC.problem g ~input:(fun _ -> ()) ~output:(fun v -> out.(v)) with
      | Ok () -> ()
      | Error vs -> Alcotest.failf "n=%d: %a" n Lcl.pp_violation (List.hd vs))
    [ (3, 1L); (4, 2L); (5, 3L); (17, 4L); (64, 5L); (301, 6L) ]

let test_cycle_coloring_log_star_cost () =
  (* the window is t+7 nodes with t = rounds_needed: constant-ish even
     for large n, and growing extremely slowly *)
  let _, _, vol_small, _ = solve_cycle 32 ~seed:7L in
  let _, _, vol_large, dist_large = solve_cycle 4096 ~seed:8L in
  let t = CC.rounds_needed ~n:4096 in
  Alcotest.(check bool) "volume stays tiny" true (vol_large <= t + 8);
  Alcotest.(check bool) "volume barely grows" true (vol_large - vol_small <= 3);
  Alcotest.(check bool) "distance ~ window" true (dist_large <= t + 4)

let test_rounds_needed_growth () =
  (* log* growth: doubling n rarely adds rounds *)
  Alcotest.(check bool) "monotone" true
    (CC.rounds_needed ~n:100 <= CC.rounds_needed ~n:1_000_000);
  Alcotest.(check bool) "tiny even for huge n" true (CC.rounds_needed ~n:1_000_000 <= 6)

(* --- Example 7.6: volume vs CONGEST ---------------------------------------- *)

let test_gap_query_solver () =
  let inst = Gap.make ~depth:6 ~seed:1L in
  let world = Gap.world inst in
  let n = Graph.n inst.Gap.graph in
  let out = Array.make n None in
  let worst_vol = ref 0 in
  Graph.iter_nodes inst.Gap.graph (fun v ->
      let r = Probe.run ~world ~origin:v Gap.solve.Lcl.solve in
      worst_vol := max !worst_vol r.Probe.volume;
      out.(v) <- Option.get r.Probe.output);
  (match
     Lcl.check Gap.problem inst.Gap.graph ~input:(Gap.input inst) ~output:(fun v -> out.(v))
   with
  | Ok () -> ()
  | Error vs -> Alcotest.failf "%a" Lcl.pp_violation (List.hd vs));
  let logn = Volcomp.Probe_tree.log2_ceil n in
  Alcotest.(check bool)
    (Printf.sprintf "volume %d = O(log n)" !worst_vol)
    true
    (!worst_vol <= (2 * logn) + 6)

let test_gap_congest_rounds_scale () =
  let inst = Gap.make ~depth:7 ~seed:2L in
  let res32 = Gap.run_congest inst ~bandwidth:32 in
  let res128 = Gap.run_congest inst ~bandwidth:128 in
  (* all U-leaves decided correctly *)
  Graph.iter_nodes inst.Gap.graph (fun v ->
      let i = Gap.input inst v in
      if i.Gap.side = Gap.U && i.Gap.index >= (1 lsl 7) - 1 then
        let pos = i.Gap.index - ((1 lsl 7) - 1) in
        Alcotest.(check (option (option bool)))
          "bit delivered" (Some (Some inst.Gap.bits.(pos)))
          res32.Congest.outputs.(v));
  Alcotest.(check bool)
    (Printf.sprintf "rounds shrink with bandwidth (%d vs %d)" res32.Congest.rounds
       res128.Congest.rounds)
    true
    (res128.Congest.rounds * 2 <= res32.Congest.rounds);
  (* rounds at B=32: about 2^7 * 9 bits / 32 across the root edge *)
  Alcotest.(check bool) "rounds lower-bounded by the cut" true
    (res32.Congest.rounds >= 128 * 9 / 32)

let test_gap_congest_respects_bandwidth () =
  let inst = Gap.make ~depth:5 ~seed:3L in
  let res = Gap.run_congest inst ~bandwidth:16 in
  Alcotest.(check bool) "max message within bandwidth" true (res.Congest.max_message_bits <= 16)

(* --- Section 7.4: secret randomness ----------------------------------------- *)

let test_secret_walk_solves_promise () =
  List.iter
    (fun leaf_color ->
      let inst = PL.promise_instance ~n:257 ~leaf_color ~seed:4L in
      Alcotest.(check bool) "promise holds" true (PL.satisfies_promise inst);
      let world = LC.world inst in
      let rand =
        Randomness.create ~regime:Randomness.Secret ~seed:5L ~n:(Graph.n inst.LC.graph) ()
      in
      Graph.iter_nodes inst.LC.graph (fun v ->
          let r = Probe.run ~world ~randomness:rand ~origin:v PL.solve_secret_walk.Lcl.solve in
          Alcotest.(check bool) "echoes the promised color" true
            (TL.equal_color (Option.get r.Probe.output) leaf_color)))
    [ TL.Red; TL.Blue ]

let test_secret_walk_cheap () =
  let inst = PL.promise_instance ~n:1025 ~leaf_color:TL.Red ~seed:6L in
  let world = LC.world inst in
  let rand =
    Randomness.create ~regime:Randomness.Secret ~seed:7L ~n:(Graph.n inst.LC.graph) ()
  in
  let logn = Volcomp.Probe_tree.log2_ceil (Graph.n inst.LC.graph) in
  let worst = ref 0 in
  Graph.iter_nodes inst.LC.graph (fun v ->
      let r = Probe.run ~world ~randomness:rand ~origin:v PL.solve_secret_walk.Lcl.solve in
      worst := max !worst r.Probe.volume);
  Alcotest.(check bool)
    (Printf.sprintf "volume %d = O(log n)" !worst)
    true
    (!worst <= 64 * logn)

let test_secret_walk_fails_without_promise () =
  (* without the promise, origins land on differently colored leaves *)
  let inst = LC.random_instance ~n:257 ~seed:8L in
  let world = LC.world inst in
  let rand =
    Randomness.create ~regime:Randomness.Secret ~seed:9L ~n:(Graph.n inst.LC.graph) ()
  in
  let out =
    Array.init (Graph.n inst.LC.graph) (fun v ->
        Option.get
          (Probe.run ~world ~randomness:rand ~origin:v PL.solve_secret_walk.Lcl.solve)
            .Probe.output)
  in
  Alcotest.(check bool) "invalid on non-promise input" false
    (Lcl.is_valid LC.problem inst.LC.graph ~input:(LC.input inst) ~output:(fun v -> out.(v)))

let test_public_randomness_is_degenerate_for_waypoints () =
  (* Question 7.9 flavor: under public randomness every node reads the
     same string, so way-point election becomes all-or-nothing — the
     per-node independence the Lemma 5.18 anchors rely on disappears.
     We verify the mechanism: all nodes elect identically. *)
  let module H = Volcomp.Hierarchical_thc in
  let inst, _ = H.hard_instance ~k:2 ~target_n:400 ~seed:17L in
  let g = H.graph inst in
  let world = H.world inst in
  let public = Randomness.create ~regime:Randomness.Public ~seed:18L ~n:(Graph.n g) () in
  let elected origin =
    (Probe.run ~world ~randomness:public ~origin (fun ctx ->
         (* read the 30 election bits of the origin itself *)
         List.init 30 (fun i -> Probe.rand_bit_at ctx origin i)))
      .Probe.output
  in
  Alcotest.(check (option (list bool)))
    "all nodes see the same public bits" (elected 0) (elected 17)

let suites =
  [
    ( "aux:class-a",
      [ Alcotest.test_case "degree parity constant cost" `Quick test_trivial_constant_cost ] );
    ( "aux:class-b",
      [
        Alcotest.test_case "3-coloring valid" `Quick test_cycle_coloring_valid;
        Alcotest.test_case "log* cost" `Quick test_cycle_coloring_log_star_cost;
        Alcotest.test_case "rounds_needed growth" `Quick test_rounds_needed_growth;
      ] );
    ( "aux:congest-gap",
      [
        Alcotest.test_case "query solver O(log n)" `Quick test_gap_query_solver;
        Alcotest.test_case "congest rounds scale with 1/B" `Quick test_gap_congest_rounds_scale;
        Alcotest.test_case "bandwidth respected" `Quick test_gap_congest_respects_bandwidth;
      ] );
    ( "aux:secret-randomness",
      [
        Alcotest.test_case "solves the promise problem" `Quick test_secret_walk_solves_promise;
        Alcotest.test_case "O(log n) volume" `Slow test_secret_walk_cheap;
        Alcotest.test_case "fails without the promise" `Quick test_secret_walk_fails_without_promise;
        Alcotest.test_case "public randomness degeneracy" `Quick
          test_public_randomness_is_degenerate_for_waypoints;
      ] );
  ]
