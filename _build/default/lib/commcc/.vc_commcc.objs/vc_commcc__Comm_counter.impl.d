lib/commcc/comm_counter.ml:
