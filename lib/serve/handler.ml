module Json = Vc_obs.Json
module Metrics = Vc_obs.Metrics
module Trace = Vc_obs.Trace
module Registry = Vc_check.Registry
module Oracle = Vc_check.Oracle

type t = {
  entries : Registry.entry list;
  cache : (string * int * int64, Registry.entry * Registry.trial) Lru.t;
  store : Registry.Store.t option;
}

(* --- metrics ----------------------------------------------------------------- *)

let request_counter =
  let kinds = [ "solve"; "probe"; "trace"; "warm"; "list"; "stats"; "shutdown" ] in
  let tbl = Hashtbl.create 8 in
  List.iter (fun k -> Hashtbl.replace tbl k (Metrics.counter ("serve.requests." ^ k))) kinds;
  fun kind -> Hashtbl.find tbl kind

let error_counter =
  let codes =
    [
      Protocol.Bad_request;
      Protocol.Unknown_problem;
      Protocol.Bad_origin;
      Protocol.Deadline_exceeded;
      Protocol.Overloaded;
      Protocol.Worker_lost;
      Protocol.Server_error;
    ]
  in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun c ->
      Hashtbl.replace tbl c (Metrics.counter ("serve.errors." ^ Protocol.code_to_string c)))
    codes;
  fun code -> Hashtbl.find tbl code

let latency_histogram =
  (* "build" is not a request kind: it meters the resident-instance
     construction (or snapshot load) that a cache miss runs on the
     dispatch domain, so warm-up stalls are visible in [stats] *)
  let kinds = [ "solve"; "probe"; "trace"; "warm"; "list"; "stats"; "shutdown"; "build" ] in
  let tbl = Hashtbl.create 8 in
  List.iter (fun k -> Hashtbl.replace tbl k (Metrics.histogram ("serve.latency_us." ^ k))) kinds;
  fun kind -> Hashtbl.find_opt tbl kind

let cache_hits = Metrics.counter "serve.cache.hits"
let cache_misses = Metrics.counter "serve.cache.misses"
let cache_evictions = Metrics.counter "serve.cache.evictions"

let note_request q = Metrics.incr (request_counter (Protocol.kind q))
let note_error code = Metrics.incr (error_counter code)

let observe_latency ~kind us =
  match latency_histogram kind with Some h -> Metrics.observe h us | None -> ()

(* --- cache ------------------------------------------------------------------- *)

let create ?entries ?(cache_capacity = 8) ?store () =
  let entries = match entries with Some es -> es | None -> Registry.all () in
  { entries; cache = Lru.create ~capacity:cache_capacity; store }

let cache_length t = Lru.length t.cache

(* Build-or-fetch the resident instance.  Building is the expensive step
   (graph construction + world warm-up) and happens here, on the
   dispatch domain, exactly once per (problem, size, seed) while the key
   stays resident; with a snapshot store it degrades to an mmap load.
   Either way the stall is recorded in [serve.latency_us.build].  The
   third component says where the instance came from ("cache", "snap"
   or "build") — the warm reply reports it. *)
let resident t ~problem ~size ~seed =
  match Oracle.find_entry ~entries:t.entries problem with
  | Error msg -> Error (Protocol.Unknown_problem, msg)
  | Ok e -> (
      let key = (e.Registry.name, size, seed) in
      match Lru.find t.cache key with
      | Some (e, trial) ->
          Metrics.incr cache_hits;
          Ok (e, trial, "cache")
      | None ->
          Metrics.incr cache_misses;
          let t0 = Unix.gettimeofday () in
          let trial = e.Registry.make ?store:t.store ~size ~seed () in
          observe_latency ~kind:"build"
            (int_of_float (Float.max 0. ((Unix.gettimeofday () -. t0) *. 1e6)));
          let et = (e, trial) in
          (match Lru.add t.cache key et with
          | Some _ -> Metrics.incr cache_evictions
          | None -> ());
          Ok
            ( e,
              trial,
              match trial.Registry.t_source with `Snapshot -> "snap" | `Built -> "build" ))

let instance_n t ~problem ~size ~seed =
  Result.map (fun (_, trial, _) -> trial.Registry.t_n) (resident t ~problem ~size ~seed)

(* --- queries ----------------------------------------------------------------- *)

let bad_origin (t : Registry.trial) origin =
  if origin < 0 || origin >= t.Registry.t_n then
    Some
      ( Protocol.Bad_origin,
        Printf.sprintf "origin %d out of range (instance has %d nodes)" origin t.Registry.t_n )
  else None

let prepare t query =
  match query with
  | Protocol.List ->
      let entries = t.entries in
      fun () -> Ok (Protocol.list_payload entries)
  | Protocol.Stats ->
      fun () ->
        Ok
          (Json.Obj
             [
               ( "cache",
                 Json.Obj
                   [
                     ("size", Json.Int (Lru.length t.cache));
                     ("capacity", Json.Int (Lru.capacity t.cache));
                   ] );
               ("metrics", Metrics.to_json ());
             ])
  | Protocol.Shutdown -> fun () -> Ok (Json.Obj [ ("bye", Json.Bool true) ])
  | Protocol.Solve { problem; size; seed } -> (
      match resident t ~problem ~size ~seed with
      | Error _ as e -> fun () -> e
      | Ok (e, trial, _) ->
          fun () ->
            Ok
              (Protocol.solve_payload ~problem:e.Registry.name ~n:trial.Registry.t_n
                 (trial.Registry.run_solvers ())))
  | Protocol.Warm { problem; size; seed } -> (
      (* the expensive step — building the resident instance — already
         happened in [resident]; the thunk only reports it *)
      match resident t ~problem ~size ~seed with
      | Error _ as e -> fun () -> e
      | Ok (e, trial, source) ->
          let payload =
            Protocol.warm_payload ~problem:e.Registry.name ~size ~n:trial.Registry.t_n
              ~source
          in
          fun () -> Ok payload)
  | Protocol.Probe { problem; size; seed; origin } -> (
      match resident t ~problem ~size ~seed with
      | Error _ as e -> fun () -> e
      | Ok (e, trial, _) -> (
          match bad_origin trial origin with
          | Some err -> fun () -> Error err
          | None -> (
              fun () ->
                match trial.Registry.probe_origin ~origin () with
                | Ok summary ->
                    Ok (Protocol.probe_payload ~problem:e.Registry.name ~origin summary)
                | Error msg -> Error (Protocol.Bad_origin, msg))))
  | Protocol.Trace { problem; size; seed; origin } -> (
      match resident t ~problem ~size ~seed with
      | Error _ as e -> fun () -> e
      | Ok (e, trial, _) -> (
          match bad_origin trial origin with
          | Some err -> fun () -> Error err
          | None -> (
              fun () ->
                let ring = Trace.ring () in
                match trial.Registry.probe_origin ~trace:ring ~origin () with
                | Ok summary ->
                    Ok
                      (Protocol.trace_payload ~problem:e.Registry.name ~origin summary
                         (Trace.events ring))
                | Error msg -> Error (Protocol.Bad_origin, msg))))

let handle t query = (prepare t query) ()

let stats_payload t = handle t Protocol.Stats |> Result.get_ok
