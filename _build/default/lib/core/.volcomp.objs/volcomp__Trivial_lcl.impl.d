lib/core/trivial_lcl.ml: Fmt Vc_graph Vc_lcl Vc_model
