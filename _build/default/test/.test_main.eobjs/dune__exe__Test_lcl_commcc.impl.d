test/test_lcl_commcc.ml: Alcotest Bool List Vc_commcc Vc_graph Vc_lcl
