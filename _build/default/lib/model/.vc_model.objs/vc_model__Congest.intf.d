lib/model/congest.mli: Vc_graph
