lib/core/gap_example.mli: Vc_graph Vc_lcl Vc_model
