(** Sequential private random bit streams.

    The paper's model (Section 2.2) equips every node [v] with a random
    string [r_v : N -> {0,1}] that is read {e sequentially}; the number of
    bits consumed must be bounded with high probability (footnote 1 and
    Question 7.8).  A [Stream.t] is exactly such a string: bits are
    produced lazily and deterministically from a seed, every read is
    counted, and reads are memoized so that two algorithm executions that
    both inspect node [v] observe the same bits.

    {b Thread-safety.}  A [t] mutates on every read (memoization and the
    sequential cursor) and must stay confined to one domain; see
    {!Randomness.fork} for the domain-local replication scheme used by
    the parallel runner. *)

type t
(** One node's random string. *)

val create : Splitmix.t -> t
(** [create gen] makes a stream whose bits are drawn from [gen]. *)

val of_seed : int64 -> t
(** [of_seed s] is [create (Splitmix.create s)]. *)

val bit : t -> int -> bool
(** [bit s i] is the [i]-th bit of the string (0-indexed).  Reads are
    memoized: the same index always yields the same bit. *)

val next_bit : t -> bool
(** [next_bit s] reads the next unread bit, advancing an internal
    cursor.  This is the sequential-access discipline assumed by the
    paper. *)

val reset_cursor : t -> unit
(** [reset_cursor s] rewinds the sequential cursor to bit 0 without
    forgetting memoized bits (used when re-running an execution). *)

val bits_consumed : t -> int
(** [bits_consumed s] is the highest bit index materialized so far plus
    one; i.e. how much randomness this node has revealed. *)
