lib/rng/splitmix.ml: Int64
