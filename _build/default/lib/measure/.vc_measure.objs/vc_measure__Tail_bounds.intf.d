lib/measure/tail_bounds.mli:
