module Graph = Vc_graph.Graph

type ('i, 'o) t = {
  name : string;
  radius : int;
  valid_at :
    Graph.t ->
    input:(Graph.node -> 'i) ->
    output:(Graph.node -> 'o) ->
    Graph.node ->
    (unit, string) result;
}

type violation = {
  node : Graph.node;
  reason : string;
}

let pp_violation ppf v = Fmt.pf ppf "node %d: %s" v.node v.reason

let check problem g ~input ~output =
  let violations =
    Graph.fold_nodes g ~init:[] ~f:(fun acc v ->
        match problem.valid_at g ~input ~output v with
        | Ok () -> acc
        | Error reason -> { node = v; reason } :: acc)
  in
  match violations with [] -> Ok () | vs -> Error (List.rev vs)

let is_valid problem g ~input ~output = Result.is_ok (check problem g ~input ~output)

type ('i, 'o) solver = {
  solver_name : string;
  randomized : bool;
  solve : 'i Vc_model.Probe.ctx -> 'o;
}

let with_name problem ~name = { problem with name }

let solver ~name ~randomized solve = { solver_name = name; randomized; solve }

let volume_bounds_from_distance ~delta ~distance =
  let upper =
    (* delta^distance + 1, saturating *)
    let rec power acc i =
      if i = 0 then acc
      else if acc > max_int / max delta 1 then max_int
      else power (acc * delta) (i - 1)
    in
    let p = power 1 distance in
    if p = max_int then max_int else p + 1
  in
  (distance, upper)

let distance_lower_bound_from_volume ~volume = volume
