module Iarr = Vc_graph.Iarr

(* On-disk layout (all sizes in bytes):

     0   magic            8   "VOLCSNAP"
     8   format version   8   u64 LE
     16  byte-order mark  8   0x0102030405060708 in host order
     24  header length    8   u64 LE, bytes of the header blob
     32  header checksum  8   FNV-1a 64 of the header blob, LE
     40  header blob      header length
     ..  padding to the next 8-byte boundary
     ..  payload segments, each starting on an 8-byte boundary

   The preamble and header blob are little-endian so a mismatched file
   fails with a structured error everywhere; the payload is raw host
   words — the whole point is that [Unix.map_file] turns a segment into
   an {!Iarr.t} with no decode step — and the byte-order mark rejects a
   file written on a different-endian host before any segment is
   touched.  Loading validates preamble + header checksum + segment
   bounds only (O(1), page-lazy); {!verify} additionally recomputes
   every segment checksum. *)

let magic = "VOLCSNAP"
let current_version = 1
let byte_order_mark = 0x0102030405060708L
let preamble_bytes = 40

(* A header blob larger than this is corruption, not a real snapshot:
   it bounds the blind [really_input] on untrusted length fields. *)
let max_header_bytes = 1 lsl 20

type segment = {
  seg_name : string;
  seg_off : int;  (* word offset from the start of the file *)
  seg_len : int;  (* length in words *)
  seg_sum : int64;  (* FNV-1a 64 of the segment's bytes *)
}

type header = {
  version : int;
  builder_version : string;
  problem : string;
  size : int;
  seed : int64;
  n : int;
  segments : segment list;
}

type error =
  | Truncated of string
  | Bad_magic
  | Bad_version of int
  | Bad_byte_order
  | Bad_checksum of string
  | Bad_header of string
  | Io of string

let error_to_string = function
  | Truncated what -> Fmt.str "truncated snapshot (%s)" what
  | Bad_magic -> "not a snapshot file (bad magic)"
  | Bad_version v -> Fmt.str "unsupported snapshot version %d (current %d)" v current_version
  | Bad_byte_order -> "snapshot written with a different byte order"
  | Bad_checksum what -> Fmt.str "checksum mismatch (%s)" what
  | Bad_header what -> Fmt.str "malformed header (%s)" what
  | Io msg -> Fmt.str "i/o error: %s" msg

let pp_error ppf e = Fmt.string ppf (error_to_string e)

(* --- FNV-1a 64 ----------------------------------------------------------- *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_byte h b = Int64.mul (Int64.logxor h (Int64.of_int b)) fnv_prime

let fnv_bytes h bytes len =
  let h = ref h in
  for i = 0 to len - 1 do
    h := fnv_byte !h (Char.code (Bytes.unsafe_get bytes i))
  done;
  !h

let fnv_string s = fnv_bytes fnv_offset (Bytes.unsafe_of_string s) (String.length s)

(* --- header blob codec ---------------------------------------------------- *)

let put_u64 buf x = Buffer.add_int64_le buf x
let put_int buf x = put_u64 buf (Int64.of_int x)

let put_str buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

let encode_header h =
  let buf = Buffer.create 256 in
  put_str buf h.builder_version;
  put_str buf h.problem;
  put_int buf h.size;
  put_u64 buf h.seed;
  put_int buf h.n;
  put_int buf (List.length h.segments);
  List.iter
    (fun s ->
      put_str buf s.seg_name;
      put_int buf s.seg_off;
      put_int buf s.seg_len;
      put_u64 buf s.seg_sum)
    h.segments;
  Buffer.contents buf

exception Malformed of string

let decode_header ?(version = current_version) blob =
  let pos = ref 0 in
  let len = String.length blob in
  let need k what = if len - !pos < k then raise (Malformed ("truncated at " ^ what)) in
  let u64 what =
    need 8 what;
    let x = String.get_int64_le blob !pos in
    pos := !pos + 8;
    x
  in
  let int what =
    let x = u64 what in
    let i = Int64.to_int x in
    if Int64.of_int i <> x || i < 0 then raise (Malformed ("unreasonable " ^ what));
    i
  in
  let str what =
    let k = int (what ^ " length") in
    need k what;
    let s = String.sub blob !pos k in
    pos := !pos + k;
    s
  in
  match
    let builder_version = str "builder-version" in
    let problem = str "problem" in
    let size = int "size" in
    let seed = u64 "seed" in
    let n = int "n" in
    let nsegs = int "segment count" in
    if nsegs > 4096 then raise (Malformed "unreasonable segment count");
    let segments =
      List.init nsegs (fun _ ->
          let seg_name = str "segment name" in
          let seg_off = int "segment offset" in
          let seg_len = int "segment length" in
          let seg_sum = u64 "segment checksum" in
          { seg_name; seg_off; seg_len; seg_sum })
    in
    if !pos <> len then raise (Malformed "trailing bytes");
    { version; builder_version; problem; size; seed; n; segments }
  with
  | h -> Ok h
  | exception Malformed what -> Error (Bad_header what)

(* --- writing --------------------------------------------------------------- *)

let words_per_chunk = 65536

(* Stream one segment to [oc] in host byte order, returning its FNV-1a
   checksum.  Chunked so multi-million-word rows never materialize a
   second copy. *)
let write_segment oc (a : Iarr.t) =
  let len = Iarr.length a in
  let chunk = Bytes.create (8 * words_per_chunk) in
  let sum = ref fnv_offset in
  let i = ref 0 in
  while !i < len do
    let k = min words_per_chunk (len - !i) in
    for j = 0 to k - 1 do
      Bytes.set_int64_ne chunk (8 * j) (Int64.of_int (Iarr.unsafe_get a (!i + j)))
    done;
    sum := fnv_bytes !sum chunk (8 * k);
    output_bytes oc (Bytes.sub chunk 0 (8 * k));
    i := !i + k
  done;
  !sum

let align8 x = (x + 7) land lnot 7

let header_blob_bytes ~builder_version ~problem ~segments =
  8 + String.length builder_version + 8 + String.length problem
  + (8 * 4)
  + List.fold_left (fun acc (name, _) -> acc + 8 + String.length name + 24) 0 segments

let write ~path ~builder_version ~problem ~size ~seed ~n ~segments =
  let blob_len = header_blob_bytes ~builder_version ~problem ~segments in
  let payload_start = align8 (preamble_bytes + blob_len) in
  (* Two passes over the layout: offsets are a pure function of the
     segment lengths, so the header can be finalized only after the
     checksums are known — segments are written first, at their
     pre-computed offsets, then the file is rewound for the header. *)
  let rec offsets word_off = function
    | [] -> []
    | (name, a) :: rest ->
        (name, a, word_off) :: offsets (word_off + Iarr.length a) rest
  in
  let placed = offsets (payload_start / 8) segments in
  match
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        seek_out oc payload_start;
        let segs =
          List.map
            (fun (name, a, word_off) ->
              let sum = write_segment oc a in
              { seg_name = name; seg_off = word_off; seg_len = Iarr.length a; seg_sum = sum })
            placed
        in
        (* pad the tail so the file length is a whole number of words *)
        let tail = pos_out oc in
        if tail land 7 <> 0 then output_bytes oc (Bytes.make (8 - (tail land 7)) '\000');
        let header =
          {
            version = current_version;
            builder_version;
            problem;
            size;
            seed;
            n;
            segments = segs;
          }
        in
        let blob = encode_header header in
        assert (String.length blob = blob_len);
        seek_out oc 0;
        let pre = Buffer.create preamble_bytes in
        Buffer.add_string pre magic;
        Buffer.add_int64_le pre (Int64.of_int current_version);
        Buffer.add_int64_ne pre byte_order_mark;
        Buffer.add_int64_le pre (Int64.of_int blob_len);
        Buffer.add_int64_le pre (fnv_string blob);
        output_string oc (Buffer.contents pre);
        output_string oc blob;
        (* zero the pad between header and payload *)
        let gap = payload_start - preamble_bytes - blob_len in
        if gap > 0 then output_bytes oc (Bytes.make gap '\000'))
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error (Io msg)

(* --- loading --------------------------------------------------------------- *)

type loaded = {
  hdr : header;
  data : Iarr.t;  (* the whole file as one mapped word array *)
}

let seg_find l name =
  match List.find_opt (fun s -> s.seg_name = name) l.hdr.segments with
  | None -> None
  | Some s -> Some (Iarr.sub l.data ~pos:s.seg_off ~len:s.seg_len)

let read_header ic ~file_bytes =
  if file_bytes < preamble_bytes then Error (Truncated "preamble")
  else begin
    let pre = really_input_string ic preamble_bytes in
    if String.sub pre 0 8 <> magic then Error Bad_magic
    else begin
      let version = Int64.to_int (String.get_int64_le pre 8) in
      if version <> current_version then Error (Bad_version version)
      else if String.get_int64_ne pre 16 <> byte_order_mark then Error Bad_byte_order
      else begin
        let blob_len = Int64.to_int (String.get_int64_le pre 24) in
        let declared_sum = String.get_int64_le pre 32 in
        if blob_len < 0 || blob_len > max_header_bytes then Error (Bad_header "header length")
        else if file_bytes < preamble_bytes + blob_len then Error (Truncated "header")
        else begin
          let blob = really_input_string ic blob_len in
          if fnv_string blob <> declared_sum then Error (Bad_checksum "header")
          else
            match decode_header ~version blob with
            | Error _ as e -> e
            | Ok h ->
                let bad_seg =
                  List.find_opt
                    (fun s ->
                      s.seg_off < 0 || s.seg_len < 0
                      || s.seg_off + s.seg_len > file_bytes / 8)
                    h.segments
                in
                (match bad_seg with
                | Some s -> Error (Truncated ("segment " ^ s.seg_name))
                | None -> Ok h)
        end
      end
    end
  end

let with_file path f =
  match open_in_bin path with
  | exception Sys_error msg -> Error (Io msg)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match f ic ~file_bytes:(in_channel_length ic) with
          | r -> r
          | exception Sys_error msg -> Error (Io msg)
          | exception End_of_file -> Error (Truncated "unexpected end of file"))

let inspect ~path = with_file path read_header

let load ~path =
  with_file path (fun ic ~file_bytes ->
      match read_header ic ~file_bytes with
      | Error _ as e -> e
      | Ok hdr -> (
          match Unix.openfile path [ Unix.O_RDONLY ] 0 with
          | exception Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))
          | fd ->
              Fun.protect
                ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
                (fun () ->
                  (* [shared:false] is MAP_PRIVATE: the pages are shared
                     read-only through the page cache across every process
                     that maps this file, and a stray write would go to a
                     private copy instead of corrupting the store. *)
                  match
                    Bigarray.array1_of_genarray
                      (Unix.map_file fd Bigarray.int Bigarray.c_layout false
                         [| file_bytes / 8 |])
                  with
                  | data -> Ok { hdr; data }
                  | exception Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e)))))

(* Full validation: the O(1) load checks plus a byte-level re-checksum of
   every segment. *)
let verify ~path =
  with_file path (fun ic ~file_bytes ->
      match read_header ic ~file_bytes with
      | Error _ as e -> e
      | Ok hdr ->
          let chunk = Bytes.create (8 * words_per_chunk) in
          let rec check = function
            | [] -> Ok hdr
            | s :: rest ->
                seek_in ic (8 * s.seg_off);
                let sum = ref fnv_offset in
                let left = ref (8 * s.seg_len) in
                while !left > 0 do
                  let k = min !left (Bytes.length chunk) in
                  really_input ic chunk 0 k;
                  sum := fnv_bytes !sum chunk k;
                  left := !left - k
                done;
                if !sum <> s.seg_sum then Error (Bad_checksum ("segment " ^ s.seg_name))
                else check rest
          in
          check hdr.segments)
