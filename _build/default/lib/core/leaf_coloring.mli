(** The LeafColoring problem (paper Section 3).

    Input: a colored tree labeling (Definition 3.1).  Output: one color
    per node.  Validity (Definition 3.4): leaves and inconsistent nodes
    must echo their input color; each internal node must output the
    color output by one of its two children in the pseudo-forest [G_T].

    The paper establishes (Theorem 3.6):
    - R-DIST, D-DIST and R-VOL are all Θ(log n);
    - D-VOL is Θ(n) — this is the paper's first separation: randomness
      buys an exponential volume saving even though it buys nothing for
      distance.

    This module provides the instance type and generators, the local
    checker, and the paper's algorithms: the deterministic
    nearest-leftmost-leaf solver of Proposition 3.9 (distance O(log n))
    and the random-walk solver [RWtoLeaf] of Algorithm 1 / Proposition
    3.10 (volume O(log n) w.h.p.).  The Ω(n) deterministic-volume
    adversary lives in {!Adversary_leaf}. *)

module TL = Vc_graph.Tree_labels
module Graph = Vc_graph.Graph

type node_input = {
  parent : TL.ptr;
  left : TL.ptr;
  right : TL.ptr;
  color : TL.color;
}

val pointers : node_input -> TL.ptr * TL.ptr * TL.ptr

val pp_node_input : Format.formatter -> node_input -> unit

type instance = {
  graph : Graph.t;
  labels : TL.t;
  colors : TL.color array;
}

val input : instance -> Graph.node -> node_input

val world : instance -> node_input Vc_model.World.t

val problem : (node_input, TL.color) Vc_lcl.Lcl.t
(** The local checker of Definition 3.4 (radius 2). *)

(** {1 Instance generators}

    All generators are deterministic functions of their parameters. *)

val of_tree : Graph.t -> TL.t -> colors:TL.color array -> instance

val random_instance : n:int -> seed:int64 -> instance
(** A random all-consistent binary tree with i.i.d. input colors. *)

val hard_distance_instance : depth:int -> leaf_color:TL.color -> instance
(** The Proposition 3.12 family: the complete binary tree of the given
    depth, internal nodes red, all leaves colored [leaf_color].  The
    unique valid output colors every node [leaf_color]. *)

val cycle_instance : cycle_len:int -> seed:int64 -> instance
(** A pseudo-tree whose [G_T] contains one directed cycle of internal
    nodes, each carrying a pendant leaf (exercises the revisit-flip rule
    of Algorithm 1, lines 4–5). *)

val figure4_instance : instance
(** A small instance in the spirit of Figure 4: consistent and
    inconsistent nodes, mixed colors. *)

val root : instance -> Graph.node
(** A canonical interesting start node (the root for tree instances,
    node 0 otherwise). *)

(** {1 Algorithms} *)

val solve_distance : (node_input, TL.color) Vc_lcl.Lcl.solver
(** Proposition 3.9: deterministic; distance O(log n); volume may be
    Θ(n) (which is also the paper's matching D-VOL upper bound). *)

val solve_random_walk : (node_input, TL.color) Vc_lcl.Lcl.solver
(** Algorithm 1 [RWtoLeaf]: randomized; volume O(log n) w.h.p. *)

val solve_random_walk_no_flip : (node_input, TL.color) Vc_lcl.Lcl.solver
(** Ablation of Algorithm 1 without the revisit-flip rule: incorrect on
    instances whose [G_T] has a cycle — the walk can trap itself.  Used
    by the ablation bench; protects itself with a step cap and returns
    its input color when trapped. *)

val solvers : (node_input, TL.color) Vc_lcl.Lcl.solver list

val unique_valid_output : instance -> TL.color array option
(** For instances whose valid output is forced (e.g.
    {!hard_distance_instance}), the forced output, computed by a global
    fixpoint; [None] when some node has a genuine choice. *)
