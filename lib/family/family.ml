module Graph = Vc_graph.Graph
module Builder = Vc_graph.Builder
module Splitmix = Vc_rng.Splitmix

(* --- 2-d torus grids ------------------------------------------------------ *)

let torus = Builder.torus

let torus_coords ~w v = (v mod w, v / w)

let torus_dims ~size =
  let even_up x = if x mod 2 = 0 then x else x + 1 in
  let side = int_of_float (sqrt (float_of_int (max 16 size))) in
  let w = max 4 (even_up side) in
  let h = max 4 (even_up ((size + w - 1) / w)) in
  (w, h)

let torus_of_size ~size ~seed =
  let w, h = torus_dims ~size in
  Graph.shuffle_ids (torus ~w ~h) ~rng:(Splitmix.create seed)

(* --- random d-regular graphs (configuration model) ------------------------ *)

let random_regular ~n ~d ~seed =
  if d < 2 then invalid_arg "Family.random_regular: d must be >= 2";
  if n <= d then invalid_arg "Family.random_regular: n must be > d";
  if n * d mod 2 <> 0 then invalid_arg "Family.random_regular: n * d must be even";
  let rng = Splitmix.create seed in
  let stubs = Array.init (n * d) (fun i -> i / d) in
  let rec attempt k =
    if k > 1000 then failwith "Family.random_regular: rejection sampling did not converge";
    for i = (n * d) - 1 downto 1 do
      let j = Splitmix.int rng ~bound:(i + 1) in
      let tmp = stubs.(i) in
      stubs.(i) <- stubs.(j);
      stubs.(j) <- tmp
    done;
    (* pair consecutive stubs; reject the whole pairing on a self-loop or
       parallel edge so [Graph.create]'s validation always holds *)
    let seen = Hashtbl.create (n * d) in
    let rec pair i acc =
      if i >= n * d then Some (List.rev acc)
      else
        let a = stubs.(i) and b = stubs.(i + 1) in
        if a = b then None
        else
          let key = (min a b, max a b) in
          if Hashtbl.mem seen key then None
          else begin
            Hashtbl.replace seen key ();
            pair (i + 2) ((a, b) :: acc)
          end
    in
    match pair 0 [] with
    | Some edges -> Graph.of_edges ~n edges
    | None -> attempt (k + 1)
  in
  attempt 0

let regular_of_size ~d ~size ~seed =
  let n = max (d + 2) size in
  let n = if n * d mod 2 = 0 then n else n + 1 in
  random_regular ~n ~d ~seed

(* --- Margulis/shift-style expanders --------------------------------------- *)

let expander ~n =
  if n < 5 || n mod 2 = 0 then invalid_arg "Family.expander: n must be odd and >= 5";
  let seen = Hashtbl.create (4 * n) in
  let edges = ref [] in
  let add a b =
    if a <> b then begin
      let key = (min a b, max a b) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        edges := (a, b) :: !edges
      end
    end
  in
  for x = 0 to n - 1 do
    add x ((x + 1) mod n)
  done;
  for x = 0 to n - 1 do
    add x (2 * x mod n)
  done;
  Graph.of_edges ~n (List.rev !edges)

let expander_of_size ~size ~seed =
  let n = max 5 size in
  let n = if n mod 2 = 0 then n + 1 else n in
  Graph.shuffle_ids (expander ~n) ~rng:(Splitmix.create seed)

(* --- the family table ------------------------------------------------------ *)

type info = {
  f_name : string;
  f_description : string;
  f_min_size : int;
  f_max_degree : int;
  f_build : size:int -> seed:int64 -> Graph.t;
}

let all =
  [
    {
      f_name = "torus";
      f_description =
        "2-d torus grid, even side lengths, normal-form ports (1=+x 2=-x 3=+y 4=-y)";
      f_min_size = 16;
      f_max_degree = 4;
      f_build = (fun ~size ~seed -> torus_of_size ~size ~seed);
    };
    {
      f_name = "d-regular";
      f_description = "random 4-regular graph: configuration model, simple by rejection";
      f_min_size = 6;
      f_max_degree = 4;
      f_build = (fun ~size ~seed -> regular_of_size ~d:4 ~size ~seed);
    };
    {
      f_name = "expander";
      f_description = "Margulis/shift-style expander on Z_n: cycle plus x <-> 2x chords";
      f_min_size = 5;
      f_max_degree = 4;
      f_build = (fun ~size ~seed -> expander_of_size ~size ~seed);
    };
  ]

let find name =
  let lname = String.lowercase_ascii name in
  List.find_opt (fun i -> String.lowercase_ascii i.f_name = lname) all
