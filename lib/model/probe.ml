module Graph = Vc_graph.Graph
module Randomness = Vc_rng.Randomness
module Stream = Vc_rng.Stream
module Metrics = Vc_obs.Metrics
module Trace = Vc_obs.Trace

let m_runs = Metrics.counter "probe.runs"
let m_queries = Metrics.counter "probe.queries"
let m_resolved_hits = Metrics.counter "probe.resolved_hits"
let m_dist_queries = Metrics.counter "probe.dist_queries"
let m_rand_bits = Metrics.counter "probe.rand_bits"
let m_volume = Metrics.histogram "probe.run_volume"

exception Illegal of string

exception Budget_exhausted

type budget = {
  max_volume : int option;
  max_distance : int option;
}

let unlimited = { max_volume = None; max_distance = None }

let volume_budget v = { unlimited with max_volume = Some v }

let distance_budget d = { unlimited with max_distance = Some d }

type 'i ctx = {
  session : 'i World.session;
  world_n : int;
  origin : Graph.node;
  randomness : Randomness.t option;
  budget : budget;
  views : (Graph.node, 'i View.t) Hashtbl.t;
  mutable visit_order : Graph.node list; (* reversed *)
  resolved_tbl : (int, Graph.node) Hashtbl.t;
      (* keyed by [at * port_stride + port]; allocation-free lookups *)
  port_stride : int;
  cursors : (Graph.node, int) Hashtbl.t;
  mutable n_queries : int;
  mutable n_rand_bits : int;
  mutable max_dist : int;
  trace : Trace.sink option;
      (* [None] when not recording: event construction is skipped
         entirely, keeping the untraced hot path allocation-free *)
}

let origin ctx = ctx.origin

let n ctx = ctx.world_n

let illegal fmt = Fmt.kstr (fun s -> raise (Illegal s)) fmt

let visited ctx v = Hashtbl.mem ctx.views v

let view ctx v =
  match Hashtbl.find_opt ctx.views v with
  | Some w -> w
  | None -> illegal "view of unvisited node %d" v

let input ctx v = (view ctx v).View.input

let degree ctx v = (view ctx v).View.degree

let id ctx v = (view ctx v).View.id

let admit ctx v =
  if not (visited ctx v) then begin
    (match ctx.budget.max_volume with
    | Some cap when Hashtbl.length ctx.views >= cap -> raise Budget_exhausted
    | Some _ | None -> ());
    Metrics.incr m_dist_queries;
    let d = ctx.session.World.dist v in
    (match ctx.trace with
    | None -> ()
    | Some sink -> Trace.emit sink (Trace.Dist { node = v; d }));
    (match ctx.budget.max_distance with
    | Some cap when d > cap -> raise Budget_exhausted
    | Some _ | None -> ());
    let w = ctx.session.World.view v in
    Hashtbl.add ctx.views v w;
    ctx.visit_order <- v :: ctx.visit_order;
    (match ctx.trace with
    | None -> ()
    | Some sink ->
        Trace.emit sink
          (Trace.View
             {
               node = v;
               id = w.View.id;
               degree = w.View.degree;
               input = Hashtbl.hash w.View.input;
             }));
    if d > ctx.max_dist then ctx.max_dist <- d
  end

let query ctx ~at ~port =
  if not (visited ctx at) then illegal "query from unvisited node %d" at;
  let d = degree ctx at in
  if port < 1 || port > d then illegal "query(%d, %d): invalid port (degree %d)" at port d;
  if port >= ctx.port_stride then
    illegal "query(%d, %d): port exceeds the world's claimed max degree %d" at port
      (ctx.port_stride - 1);
  ctx.n_queries <- ctx.n_queries + 1;
  Metrics.incr m_queries;
  let key = (at * ctx.port_stride) + port in
  let u =
    match Hashtbl.find_opt ctx.resolved_tbl key with
    | Some u ->
        Metrics.incr m_resolved_hits;
        u
    | None ->
        let u = ctx.session.World.resolve at ~port in
        Hashtbl.add ctx.resolved_tbl key u;
        u
  in
  (match ctx.trace with
  | None -> ()
  | Some sink -> Trace.emit sink (Trace.Probe { at; port; node = u }));
  admit ctx u;
  u

let resolved ctx ~at ~port =
  if port < 1 || port >= ctx.port_stride then None
  else Hashtbl.find_opt ctx.resolved_tbl ((at * ctx.port_stride) + port)

let check_rand_access ctx v =
  if not (visited ctx v) then illegal "random bits of unvisited node %d" v;
  match ctx.randomness with
  | None -> illegal "deterministic execution reads random bits"
  | Some r ->
      if not (Randomness.readable r ~origin:ctx.origin ~node:v) then
        illegal "randomness regime forbids reading node %d's bits from origin %d" v ctx.origin;
      r

let rand_bit_at ctx v i =
  let r = check_rand_access ctx v in
  ctx.n_rand_bits <- ctx.n_rand_bits + 1;
  Metrics.incr m_rand_bits;
  let bit = Stream.bit (Randomness.stream r v) i in
  (match ctx.trace with
  | None -> ()
  | Some sink -> Trace.emit sink (Trace.Rand { node = v; index = i; bit }));
  bit

let rand_bit ctx v =
  let r = check_rand_access ctx v in
  let cursor = match Hashtbl.find_opt ctx.cursors v with Some c -> c | None -> 0 in
  Hashtbl.replace ctx.cursors v (cursor + 1);
  ctx.n_rand_bits <- ctx.n_rand_bits + 1;
  Metrics.incr m_rand_bits;
  let bit = Stream.bit (Randomness.stream r v) cursor in
  (match ctx.trace with
  | None -> ()
  | Some sink -> Trace.emit sink (Trace.Rand { node = v; index = cursor; bit }));
  bit

let truncate _ctx = raise Budget_exhausted

let volume ctx = Hashtbl.length ctx.views

let queries ctx = ctx.n_queries

let visited_nodes ctx = List.rev ctx.visit_order

type 'o result = {
  output : 'o option;
  volume : int;
  distance : int;
  queries : int;
  rand_bits : int;
  aborted : bool;
}

let run ~world ?randomness ?(budget = unlimited) ?trace ~origin:start algo =
  Metrics.incr m_runs;
  let session = world.World.start start in
  (* Pre-size the per-run tables from the volume budget: a run visiting
     at most [v] nodes touches at most [v] views and ~[v·Δ] resolved
     edges, so sizing up front avoids rehashing in the hot path (capped
     so huge budgets don't allocate huge empty tables). *)
  let table_size =
    match budget.max_volume with Some v -> max 16 (min (v + 1) 4096) | None -> 64
  in
  let ctx =
    {
      session;
      world_n = world.World.n;
      origin = start;
      randomness;
      budget;
      views = Hashtbl.create table_size;
      visit_order = [];
      resolved_tbl = Hashtbl.create (2 * table_size);
      port_stride = world.World.max_degree + 1;
      cursors = Hashtbl.create 8;
      n_queries = 0;
      n_rand_bits = 0;
      max_dist = 0;
      trace;
    }
  in
  (* The origin is always visitable, irrespective of budgets. *)
  let origin_view = session.World.view start in
  Hashtbl.add ctx.views start origin_view;
  ctx.visit_order <- [ start ];
  (match trace with
  | None -> ()
  | Some sink ->
      Trace.emit sink (Trace.Session_open { origin = start; n = world.World.n });
      Trace.emit sink
        (Trace.View
           {
             node = start;
             id = origin_view.View.id;
             degree = origin_view.View.degree;
             input = Hashtbl.hash origin_view.View.input;
           }));
  let output, aborted =
    match algo ctx with
    | out -> (Some out, false)
    | exception Budget_exhausted -> (None, true)
  in
  let result =
    {
      output;
      volume = volume ctx;
      distance = ctx.max_dist;
      queries = ctx.n_queries;
      rand_bits = ctx.n_rand_bits;
      aborted;
    }
  in
  Metrics.observe m_volume result.volume;
  (match trace with
  | None -> ()
  | Some sink ->
      Trace.emit sink
        (Trace.Session_close
           {
             volume = result.volume;
             distance = result.distance;
             queries = result.queries;
             rand_bits = result.rand_bits;
             aborted;
             output = Hashtbl.hash output;
           }));
  result

let run_exn ~world ?randomness ?budget ?trace ~origin algo =
  let r = run ~world ?randomness ?budget ?trace ~origin algo in
  if r.aborted then failwith "Probe.run_exn: execution exceeded its budget" else r
