lib/measure/experiments.mli: Fit Format
