module Json = Vc_obs.Json
module Metrics = Vc_obs.Metrics
module Registry = Vc_check.Registry

(* --- supervisor metrics ------------------------------------------------------- *)

let routed_c = Metrics.counter "serve.shard.routed"
let shed_c = Metrics.counter "serve.shard.shed"
let lost_c = Metrics.counter "serve.shard.worker_lost"
let deaths_c = Metrics.counter "serve.shard.deaths"
let respawns_c = Metrics.counter "serve.shard.respawns"
let rewarmed_c = Metrics.counter "serve.shard.rewarmed"

(* Split of completed re-warm replies by where the fresh worker got the
   instance from: a snapshot-store mmap load vs. a scratch rebuild. *)
let rewarm_snap_c = Metrics.counter "serve.shard.rewarm_snap"
let rewarm_build_c = Metrics.counter "serve.shard.rewarm_build"
let peak_inflight_c = Metrics.counter "serve.shard.peak_inflight"

(* --- worker spawns ------------------------------------------------------------ *)

let fork_spawn make_handler ~shard:_ ~fd ~close_fds =
  match Unix.fork () with
  | 0 ->
      List.iter (fun f -> try Unix.close f with Unix.Unix_error _ -> ()) close_fds;
      let code =
        try
          Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
          ignore (Server.run_conn ~handler:(make_handler ()) ~fd () : int);
          0
        with _ -> 1
      in
      (* a forked worker must never run the parent's at_exit handlers *)
      Unix._exit code
  | pid -> pid

let exec_spawn ?(jobs = 1) ?snap_dir ~cache ~queue_depth exe ~shard:_ ~fd ~close_fds:_ =
  let args =
    Array.of_list
      ([
         exe; "serve"; "--worker";
         "--cache"; string_of_int cache;
         "--queue-depth"; string_of_int queue_depth;
         "-j"; string_of_int jobs;
       ]
      @ match snap_dir with None -> [] | Some d -> [ "--snap-dir"; d ])
  in
  (* the socketpair end becomes the worker's stdin; sockets are
     bidirectional, so replies come back on the same descriptor *)
  Unix.create_process exe args fd Unix.stdout Unix.stderr

(* --- client connections ------------------------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  dec : Protocol.decoder;
  mutable alive : bool;
}

let close_conn c =
  if c.alive then begin
    c.alive <- false;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let write_conn c s =
  if c.alive then
    try
      let len = String.length s in
      let off = ref 0 in
      while !off < len do
        off := !off + Unix.write_substring c.fd s !off (len - !off)
      done
    with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> close_conn c

(* --- routes ------------------------------------------------------------------- *)

(* A [stats] request fans out to every live worker and the parts are
   merged; [g_remaining] counts outstanding parts (worker death
   decrements it so a gather can never hang). *)
type gather = {
  g_conn : conn;
  g_client_id : int;
  g_arrival : float;
  mutable g_remaining : int;
  mutable g_parts : (int * Json.t) list;
}

type route =
  | Client of { conn : conn; client_id : int; kind : string; arrival : float; shard : int }
  | Part of { gather : gather; shard : int }
  | Internal of { shard : int }

let route_shard = function
  | Client { shard; _ } | Part { shard; _ } | Internal { shard } -> shard

(* --- reply id splicing -------------------------------------------------------- *)

(* Worker replies are our own [ok_reply]/[error_reply] encodings, whose
   first member is always ["id"].  Rewriting the internal id back to the
   client's by splicing the digit run keeps every other byte of the
   reply untouched — the byte-identity contract of probe 9 rests on the
   supervisor never re-encoding a payload. *)
let id_prefix = "{\"id\":"

let split_reply body =
  let pl = String.length id_prefix in
  let n = String.length body in
  if n < pl || String.sub body 0 pl <> id_prefix then None
  else begin
    let i = ref pl in
    while !i < n && (match body.[!i] with '0' .. '9' -> true | _ -> false) do
      incr i
    done;
    if !i = pl then None
    else
      match int_of_string_opt (String.sub body pl (!i - pl)) with
      | None -> None
      | Some id -> Some (id, String.sub body !i (n - !i))
  end

(* --- the loop ----------------------------------------------------------------- *)

let run ~workers ?(cache_capacity = 8) ?(queue_depth = 64) ?(vnodes = Ring.default_vnodes)
    ~spawn ~listen () =
  if workers < 1 then invalid_arg "Supervisor.run: workers must be >= 1";
  if queue_depth < 1 then invalid_arg "Supervisor.run: queue_depth must be >= 1";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Unix.set_close_on_exec listen;
  let entries = Registry.all () in
  let ring = Ring.create ~vnodes (List.init workers Fun.id) in
  let conns = ref [] in
  let answered = ref 0 in
  let stopping = ref false in
  let next_internal = ref 0 in
  let routes : (int, route) Hashtbl.t = Hashtbl.create 64 in
  let buf = Bytes.create 65536 in
  (* each fork-spawned worker closes the listener and its elder
     siblings' channels; later descriptors are created after it exists *)
  let shard_list = ref [] in
  for i = 0 to workers - 1 do
    let close_fds = listen :: List.map (fun s -> s.Shard.fd) !shard_list in
    shard_list := !shard_list @ [ Shard.create ~spawn ~warm_capacity:cache_capacity ~close_fds i ]
  done;
  let shards = Array.of_list !shard_list in
  let close_fds_for () =
    (listen :: List.filter_map (fun c -> if c.alive then Some c.fd else None) !conns)
    @ List.filter_map
        (fun s -> if s.Shard.alive then Some s.Shard.fd else None)
        (Array.to_list shards)
  in
  let lat_us arrival = int_of_float (Float.max 0. ((Unix.gettimeofday () -. arrival) *. 1e6)) in
  let reply_raw c body =
    write_conn c (Protocol.frame body);
    incr answered
  in
  let reply c json = reply_raw c (Json.to_string json) in
  let reply_error c ~id ~code ~message =
    Handler.note_error code;
    reply c (Protocol.error_reply ~id ~code ~message)
  in
  let fresh_id () =
    let id = !next_internal in
    next_internal := id + 1;
    id
  in
  (* merged stats payload: summed cache occupancy, the supervisor's own
     metrics (the serve.shard.* counters live here), and a per-shard
     breakdown whose pids let a harness aim signals at live workers *)
  let finish_gather g =
    let part_int part outer inner =
      match Option.bind (Json.member part outer) (fun o -> Json.member o inner) with
      | Some v -> Option.value (Json.to_int v) ~default:0
      | None -> 0
    in
    let sum f = List.fold_left (fun acc (_, p) -> acc + f p) 0 g.g_parts in
    let rows =
      Array.to_list
        (Array.map
           (fun s ->
             Json.Obj
               [
                 ("shard", Json.Int s.Shard.id);
                 ("pid", Json.Int s.Shard.pid);
                 ("alive", Json.Bool s.Shard.alive);
                 ("inflight", Json.Int s.Shard.inflight);
                 ("respawns", Json.Int s.Shard.respawns);
                 ("warm", Json.Int (Shard.warm_count s));
                 ( "stats",
                   match List.assoc_opt s.Shard.id g.g_parts with
                   | Some p -> p
                   | None -> Json.Null );
               ])
           shards)
    in
    let payload =
      Json.Obj
        [
          ( "cache",
            Json.Obj
              [
                ("size", Json.Int (sum (fun p -> part_int p "cache" "size")));
                ("capacity", Json.Int (sum (fun p -> part_int p "cache" "capacity")));
              ] );
          ("metrics", Metrics.to_json ());
          ("workers", Json.Int workers);
          ("shards", Json.List rows);
        ]
    in
    reply g.g_conn (Protocol.ok_reply ~id:g.g_client_id payload);
    Handler.observe_latency ~kind:"stats" (lat_us g.g_arrival)
  in
  let fail_shard_routes shard =
    let victims =
      Hashtbl.fold
        (fun id r acc -> if route_shard r = shard.Shard.id then (id, r) :: acc else acc)
        routes []
    in
    List.iter
      (fun (id, r) ->
        Hashtbl.remove routes id;
        match r with
        | Client { conn; client_id; kind; arrival; _ } ->
            Metrics.incr lost_c;
            reply_error conn ~id:client_id ~code:Protocol.Worker_lost
              ~message:
                (Printf.sprintf "shard %d worker died with the request in flight"
                   shard.Shard.id);
            Handler.observe_latency ~kind (lat_us arrival)
        | Part { gather; _ } ->
            gather.g_remaining <- gather.g_remaining - 1;
            if gather.g_remaining <= 0 then finish_gather gather
        | Internal _ -> ())
      victims
  in
  (* respawn + re-warm; if the fresh worker dies mid-re-warm it stays
     down (no respawn storm) and is revived lazily by the next request
     routed to it *)
  let revive shard =
    Shard.respawn ~spawn ~close_fds:(close_fds_for ()) shard;
    Metrics.incr respawns_c;
    List.iter
      (fun q ->
        if shard.Shard.alive then begin
          let id = fresh_id () in
          Hashtbl.replace routes id (Internal { shard = shard.Shard.id });
          shard.Shard.inflight <- shard.Shard.inflight + 1;
          let body =
            Json.to_string
              (Protocol.request_to_json { Protocol.id; deadline_ms = None; query = q })
          in
          if Shard.send shard body then Metrics.incr rewarmed_c
        end)
      (Shard.warm_queries shard);
    if not shard.Shard.alive then begin
      Metrics.incr deaths_c;
      Shard.reap shard;
      fail_shard_routes shard
    end
  in
  let on_death shard =
    Shard.mark_dead shard;
    Metrics.incr deaths_c;
    Shard.reap shard;
    fail_shard_routes shard;
    if not !stopping then revive shard
  in
  let forward shard route ?deadline_ms query =
    let id = fresh_id () in
    Hashtbl.replace routes id route;
    shard.Shard.inflight <- shard.Shard.inflight + 1;
    Metrics.record_max peak_inflight_c shard.Shard.inflight;
    let body =
      Json.to_string (Protocol.request_to_json { Protocol.id; deadline_ms; query })
    in
    if not (Shard.send shard body) then on_death shard
  in
  let route_request c ~arrival (req : Protocol.request) =
    Handler.note_request req.Protocol.query;
    let id = req.Protocol.id in
    match req.Protocol.query with
    | Protocol.List ->
        (* answered locally, with the same payload builder as a worker —
           byte-identical and no cross-process hop *)
        reply c (Protocol.ok_reply ~id (Protocol.list_payload entries));
        Handler.observe_latency ~kind:"list" (lat_us arrival)
    | Protocol.Shutdown ->
        reply c (Protocol.ok_reply ~id (Json.Obj [ ("bye", Json.Bool true) ]));
        Handler.observe_latency ~kind:"shutdown" (lat_us arrival);
        stopping := true
    | Protocol.Stats ->
        let live = List.filter (fun s -> s.Shard.alive) (Array.to_list shards) in
        let g =
          {
            g_conn = c;
            g_client_id = id;
            g_arrival = arrival;
            g_remaining = List.length live;
            g_parts = [];
          }
        in
        if live = [] then finish_gather g
        else
          List.iter
            (fun s -> forward s (Part { gather = g; shard = s.Shard.id }) Protocol.Stats)
            live
    | (Protocol.Solve { problem; size; seed } | Protocol.Warm { problem; size; seed })
    | Protocol.Probe { problem; size; seed; _ }
    | Protocol.Trace { problem; size; seed; _ } ->
        let key = Ring.session_key ~problem ~size ~seed in
        let sid = Ring.lookup ring key in
        let shard = shards.(sid) in
        if (not shard.Shard.alive) && not !stopping then revive shard;
        if not shard.Shard.alive then begin
          Metrics.incr lost_c;
          reply_error c ~id ~code:Protocol.Worker_lost
            ~message:(Printf.sprintf "shard %d worker is down" sid)
        end
        else if shard.Shard.inflight >= queue_depth then begin
          Metrics.incr shed_c;
          reply_error c ~id ~code:Protocol.Overloaded
            ~message:
              (Printf.sprintf "shard %d queue full (%d requests in flight)" sid
                 shard.Shard.inflight)
        end
        else begin
          Metrics.incr routed_c;
          Shard.note_warm shard ~key (Protocol.Warm { problem; size; seed });
          forward shard
            (Client
               {
                 conn = c;
                 client_id = id;
                 kind = Protocol.kind req.Protocol.query;
                 arrival;
                 shard = sid;
               })
            ?deadline_ms:req.Protocol.deadline_ms req.Protocol.query
        end
  in
  let rec drain_shard s =
    match Protocol.next_frame s.Shard.dec with
    | Ok None -> ()
    | Error _ -> on_death s
    | Ok (Some body) -> (
        match split_reply body with
        | None -> on_death s
        | Some (iid, rest) ->
            (match Hashtbl.find_opt routes iid with
            | None -> ()
            | Some r ->
                Hashtbl.remove routes iid;
                s.Shard.inflight <- max 0 (s.Shard.inflight - 1);
                (match r with
                | Client { conn; client_id; kind; arrival; _ } ->
                    reply_raw conn (id_prefix ^ string_of_int client_id ^ rest);
                    Handler.observe_latency ~kind (lat_us arrival)
                | Part { gather; _ } ->
                    (match Result.bind (Json.parse body) Protocol.reply_of_json with
                    | Ok { Protocol.body = Ok payload; _ } ->
                        gather.g_parts <- (s.Shard.id, payload) :: gather.g_parts
                    | _ -> ());
                    gather.g_remaining <- gather.g_remaining - 1;
                    if gather.g_remaining <= 0 then finish_gather gather
                | Internal _ -> (
                    (* re-warm replies: count snapshot loads vs rebuilds
                       so `stats` shows whether a configured store is
                       actually absorbing post-kill warm-up *)
                    match Result.bind (Json.parse body) Protocol.reply_of_json with
                    | Ok { Protocol.body = Ok payload; _ } -> (
                        match Option.bind (Json.member payload "source") Json.to_str with
                        | Some "snap" -> Metrics.incr rewarm_snap_c
                        | Some ("build" | "cache") -> Metrics.incr rewarm_build_c
                        | Some _ | None -> ())
                    | _ -> ())));
            if s.Shard.alive then drain_shard s)
  in
  let read_shard s =
    match Unix.read s.Shard.fd buf 0 (Bytes.length buf) with
    | 0 -> on_death s
    | n ->
        Protocol.feed s.Shard.dec buf n;
        drain_shard s
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> on_death s
  in
  (* client framing/parse errors are handled with the exact code paths
     (and bytes) of the single-process server *)
  let rec drain_conn c =
    match Protocol.next_frame c.dec with
    | Ok None -> ()
    | Error msg ->
        reply_error c ~id:0 ~code:Protocol.Bad_request ~message:("bad frame: " ^ msg);
        close_conn c
    | Ok (Some body) ->
        let arrival = Unix.gettimeofday () in
        (match Json.parse body with
        | Error msg -> reply_error c ~id:0 ~code:Protocol.Bad_request ~message:msg
        | Ok v -> (
            match Protocol.request_of_json v with
            | Error msg ->
                let id =
                  match Option.bind (Json.member v "id") Json.to_int with
                  | Some id when id >= 0 -> id
                  | _ -> 0
                in
                reply_error c ~id ~code:Protocol.Bad_request ~message:msg
            | Ok req -> route_request c ~arrival req));
        if c.alive && not !stopping then drain_conn c
  in
  let read_conn c =
    match Unix.read c.fd buf 0 (Bytes.length buf) with
    | 0 -> close_conn c
    | n ->
        Protocol.feed c.dec buf n;
        drain_conn c
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> close_conn c
  in
  while not !stopping do
    conns := List.filter (fun c -> c.alive) !conns;
    let watch =
      (listen :: List.map (fun c -> c.fd) !conns)
      @ List.filter_map
          (fun s -> if s.Shard.alive then Some s.Shard.fd else None)
          (Array.to_list shards)
    in
    let readable, _, _ = Unix.select watch [] [] (-1.0) in
    if List.mem listen readable then begin
      let fd, _ = Unix.accept ~cloexec:true listen in
      conns := { fd; dec = Protocol.decoder (); alive = true } :: !conns
    end;
    (* a shard that dies while we process its sibling may be respawned
       onto a recycled descriptor number: the generation snapshot keeps
       us from reading a fresh, empty channel and blocking *)
    let ready_shards =
      List.filter_map
        (fun s ->
          if s.Shard.alive && List.mem s.Shard.fd readable then Some (s, s.Shard.respawns)
          else None)
        (Array.to_list shards)
    in
    List.iter
      (fun (s, gen) -> if s.Shard.alive && s.Shard.respawns = gen then read_shard s)
      ready_shards;
    List.iter
      (fun c -> if c.alive && (not !stopping) && List.mem c.fd readable then read_conn c)
      !conns
  done;
  List.iter close_conn !conns;
  (try Unix.close listen with Unix.Unix_error _ -> ());
  Array.iter
    (fun s ->
      if s.Shard.alive then begin
        Shard.mark_dead s;
        Shard.reap s
      end)
    shards;
  !answered
