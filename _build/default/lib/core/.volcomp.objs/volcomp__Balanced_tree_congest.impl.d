lib/core/balanced_tree_congest.ml: Array Balanced_tree List Probe_tree Vc_graph Vc_model
