let escape s = String.concat "\\\"" (String.split_on_char '"' s)

let to_string ?(name = "volcomp") ?(node_label = fun _ -> "") ?(highlight = fun _ -> false)
    ?(highlight_edge = fun _ _ -> false) g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph \"%s\" {\n" (escape name));
  Buffer.add_string buf "  node [shape=circle fontsize=10];\n";
  Graph.iter_nodes g (fun v ->
      let extra = node_label v in
      let label =
        if extra = "" then string_of_int (Graph.id g v)
        else Printf.sprintf "%d\\n%s" (Graph.id g v) (escape extra)
      in
      let style = if highlight v then " style=filled fillcolor=lightgray" else "" in
      Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%s\"%s];\n" v label style));
  List.iter
    (fun (u, v) ->
      let pu = match Graph.port_to g u v with Some p -> p | None -> 0 in
      let pv = match Graph.port_to g v u with Some p -> p | None -> 0 in
      let style = if highlight_edge u v || highlight_edge v u then " penwidth=2.5" else "" in
      Buffer.add_string buf
        (Printf.sprintf "  n%d -- n%d [taillabel=\"%d\" headlabel=\"%d\" fontsize=8%s];\n" u v pu
           pv style))
    (Graph.edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_file ~path ?name ?node_label ?highlight ?highlight_edge g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?name ?node_label ?highlight ?highlight_edge g))

(* --- probed balls from transcripts ---------------------------------------- *)

type ball = {
  ball_origin : Graph.node option;
  in_ball : Graph.node -> bool;
  probed_edge : Graph.node -> Graph.node -> bool;
}

let trace_ball events =
  let visited : (Graph.node, unit) Hashtbl.t = Hashtbl.create 64 in
  let probed : (Graph.node * Graph.node, unit) Hashtbl.t = Hashtbl.create 64 in
  let origin = ref None in
  List.iter
    (fun (ev : Vc_obs.Trace.event) ->
      match ev with
      | Session_open { origin = o; _ } -> if !origin = None then origin := Some o
      | View { node; _ } -> Hashtbl.replace visited node ()
      | Probe { at; node; _ } -> Hashtbl.replace probed ((min at node, max at node)) ()
      | Dist _ | Rand _ | Session_close _ -> ())
    events;
  {
    ball_origin = !origin;
    in_ball = (fun v -> Hashtbl.mem visited v);
    probed_edge = (fun u v -> Hashtbl.mem probed ((min u v, max u v)));
  }
