(** A defunctionalized probe-program IR.

    Closure solvers re-enter {!Vc_model.Probe} one query at a time;
    nothing outside the running OCaml process can inspect, store, or
    batch them.  This IR reifies the probe {e schedule} as data: a small
    register machine whose only world-facing instruction is [Probe]
    (walk a path of ports and pay for every hop), with branching on
    locally observable facts (degrees, input-label fields, node
    equality), bounded scratch (marks, FIFO queues), and a finite output
    table.  Unbounded output {e computation} (e.g. Cole–Vishkin's color
    arithmetic) lives in the per-program table of pure combinators
    {!spec.fns}, which see the execution's query log but cannot touch
    the world — so every query a program can ever make is visible in its
    code, which is what makes programs wire-shippable ({!program_of_json}
    + {!validate} + the {!step_cap}) and enumerable for synthesis.

    Cost semantics are {!Vc_model.Probe}'s, hop for hop: each [Probe]
    path element is one query (counted before the admit that may abort),
    volume counts distinct visited nodes, distance is the max over
    visited nodes, and the origin is free.  {!Exec} provides a reference
    interpreter that runs through a [Probe.ctx] — so this is true by
    construction — and a batched executor that must (and does, see
    oracle probe 8) reproduce it bit for bit. *)

type reg = int
(** Register index in [0 .. n_regs-1].  Registers hold nodes; they start
    out holding the origin, and only ever receive probed or popped
    nodes, so a register always names a {e visited} node — queries only
    from visited nodes holds by construction. *)

type queue = int
(** FIFO queue index in [0 .. n_queues-1]. *)

type field = int
(** Observation-field index in [0 .. obs_arity-1]: programs see node
    inputs only through the {!spec.obs} projection to small ints. *)

type port_sel =
  | P_const of int  (** a literal port number (1-based) *)
  | P_field of field  (** the port stored in an input field of the current node *)

type cond =
  | C_deg_le of reg * int
  | C_deg_eq of reg * int
  | C_deg_mod of reg * int * int  (** [deg mod m = k] *)
  | C_port_ok of reg * port_sel  (** [1 <= port <= degree] — the guard for [Probe] *)
  | C_label_eq of reg * field * int
  | C_field_eq of reg * field * field  (** two fields of the {e same} node *)
  | C_node_eq of reg * reg
  | C_marked of reg
  | C_queue_empty of queue

type instr =
  | Probe of { at : reg; path : port_sel array; dst : reg }
      (** Walk from [at] along [path], one query per hop (port selectors
          are evaluated at the node reached so far, enabling pointer
          chasing); the final node lands in [dst].  An invalid port
          truncates the run. *)
  | Jump of int
  | Branch of { cond : cond; if_true : int; if_false : int }
  | Move of { src : reg; dst : reg }
  | Mark of reg
  | Push of { queue : queue; src : reg }
  | Pop of { queue : queue; dst : reg }  (** empty queue truncates *)
  | Out_const of int  (** terminate with [consts.(k)] *)
  | Out_fn of int  (** terminate with [fns.(k) env] *)
  | Halt  (** voluntary truncation (Remark 3.11) *)

type program = {
  name : string;
  n_regs : int;
  n_queues : int;
  obs_arity : int;
  n_consts : int;
  n_fns : int;
  declared : Vc_model.Probe.budget;
      (** self-declared cost envelope, intersected with the caller's
          budget by both executors ({!effective_budget}) *)
  max_steps : int option;  (** step cap override; see {!step_cap} *)
  code : instr array;
}

(** What an output combinator may see: the origin, [n], the registers,
    the full query log (result of every query, in issue order, repeats
    included), and views of visited nodes.  The accessor closures are
    only valid during the combinator call — they read executor scratch
    that is recycled for the next origin. *)
type 'i env = {
  e_origin : Vc_graph.Graph.node;
  e_n : int;
  e_reg : reg -> Vc_graph.Graph.node;
  e_queries : int;
  e_query : int -> Vc_graph.Graph.node;
  e_id : Vc_graph.Graph.node -> int;
  e_degree : Vc_graph.Graph.node -> int;
  e_input : Vc_graph.Graph.node -> 'i;
}

type ('i, 'o) spec = {
  program : program;
  obs : 'i -> field -> int;  (** pure projection of inputs to observation fields *)
  consts : 'o array;  (** [n_consts] outputs *)
  fns : ('i env -> 'o) array;  (** [n_fns] pure output combinators *)
}

(** {1 Cost model} *)

val default_step_cap : n:int -> program -> int
(** The termination backstop when [max_steps] is absent: a deterministic
    function of the claimed [n] and the code length only, so both
    executors truncate runaway programs at the identical step. *)

val step_cap : n:int -> program -> int

val intersect_budget : Vc_model.Probe.budget -> Vc_model.Probe.budget -> Vc_model.Probe.budget

val effective_budget : program -> Vc_model.Probe.budget -> Vc_model.Probe.budget
(** Field-wise minimum of the program's declared envelope and the
    caller's budget; what {!Exec.run} and {!Exec.run_batch} enforce. *)

(** {1 Static validation} *)

val validate : program -> (unit, string) result
(** Structural well-formedness: every register, queue, field, output
    index, and branch target in range; ports positive; probe paths
    non-empty; control cannot fall off the end; declared budgets and
    step cap positive.  Validated programs cannot raise from the
    executors — they can only truncate. *)

val validate_spec : ('i, 'o) spec -> (unit, string) result
(** {!validate} plus output-table arity agreement. *)

(** {1 Pretty-printing and JSON} *)

val pp_program : Format.formatter -> program -> unit

val program_to_json : program -> Vc_obs.Json.t

val program_of_json : Vc_obs.Json.t -> (program, string) result
(** Decode and {!validate} (untrusted input is rejected, not run). *)

val instr_to_json : instr -> Vc_obs.Json.t

val instr_of_json : Vc_obs.Json.t -> (instr, string) result
(** Single-instruction codec, for witness reconstruction (synthesis
    decodes one chosen instruction per template slot).  Round-trips
    with {!instr_to_json}; range checks are {!validate}'s job — a
    decoded instruction is structurally an [instr] but not yet known to
    be in range for any particular program. *)

(** {1 Assembler} *)

(** Two-pass assembler over symbolic labels, for hand-compiling solvers
    ({!Library}) and generating random programs ({!Vc_check.Gen}). *)
module Asm : sig
  type label

  type t

  val create : unit -> t

  val label : t -> label
  (** Fresh, not yet placed, label. *)

  val place : t -> label -> unit
  (** Bind a label to the next emitted instruction.  Each label must be
      placed exactly once before {!assemble}. *)

  val probe : t -> at:reg -> path:port_sel array -> dst:reg -> unit

  val jump : t -> label -> unit

  val branch : t -> cond -> if_true:label -> if_false:label -> unit

  val move : t -> src:reg -> dst:reg -> unit

  val mark : t -> reg -> unit

  val push : t -> queue:queue -> src:reg -> unit

  val pop : t -> queue:queue -> dst:reg -> unit

  val out_const : t -> int -> unit

  val out_fn : t -> int -> unit

  val halt : t -> unit

  val assemble :
    t ->
    name:string ->
    n_regs:int ->
    n_queues:int ->
    obs_arity:int ->
    n_consts:int ->
    n_fns:int ->
    ?declared:Vc_model.Probe.budget ->
    ?max_steps:int ->
    unit ->
    program
  (** Resolve labels and {!validate}.
      @raise Invalid_argument on unplaced labels or validation failure. *)
end
