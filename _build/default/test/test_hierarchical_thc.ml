(* Tests for Hierarchical-THC(k) (paper Section 5): levels and the
   hierarchical forest, the Definition 5.5 checker, Algorithm 2 and its
   randomized way-point variant, and the volume separation between
   them. *)

module TL = Vc_graph.Tree_labels
module Graph = Vc_graph.Graph
module Probe = Vc_model.Probe
module Lcl = Vc_lcl.Lcl
module H = Volcomp.Hierarchical_thc
module Randomness = Vc_rng.Randomness

let solve_all ?randomness inst (solver : (H.node_input, H.output) Lcl.solver) =
  let world = H.world inst in
  let n = Graph.n (H.graph inst) in
  let costs = ref [] in
  let out =
    Array.init n (fun v ->
        let r = Probe.run ~world ?randomness ~origin:v solver.Lcl.solve in
        costs := r :: !costs;
        match r.Probe.output with Some o -> o | None -> Alcotest.fail "solver aborted")
  in
  (out, !costs)

let check_valid inst out =
  match
    Lcl.check (H.problem ~k:inst.H.k) (H.graph inst) ~input:(H.input inst)
      ~output:(fun v -> out.(v))
  with
  | Ok () -> ()
  | Error vs ->
      Alcotest.failf "invalid: %a"
        Fmt.(list ~sep:comma Lcl.pp_violation)
        (if List.length vs > 5 then [ List.hd vs ] else vs)

let rand_for inst seed = Randomness.create ~seed ~n:(Graph.n (H.graph inst)) ()

(* --- structure ----------------------------------------------------------- *)

let test_levels_uniform () =
  let inst = H.uniform_instance ~k:3 ~len:4 ~seed:1L in
  let a = H.graph_access inst in
  (* node 0 is the top-level backbone root *)
  Alcotest.(check int) "root level k" 3 (H.level a ~k:3 0);
  (* level histogram: 4 + 16 + 64 nodes at levels 3, 2, 1 *)
  let counts = Array.make 4 0 in
  Graph.iter_nodes (H.graph inst) (fun v ->
      let l = H.level a ~k:3 v in
      Alcotest.(check bool) "level within 1..3" true (l >= 1 && l <= 3);
      counts.(l) <- counts.(l) + 1);
  Alcotest.(check int) "level-3 nodes" 4 counts.(3);
  Alcotest.(check int) "level-2 nodes" 16 counts.(2);
  Alcotest.(check int) "level-1 nodes" 64 counts.(1)

let test_backbone_edges () =
  let inst = H.uniform_instance ~k:2 ~len:3 ~seed:1L in
  let a = H.graph_access inst in
  (* top backbone 0 -> 1 -> 2; each hangs a level-1 backbone of 3 *)
  Alcotest.(check (option int)) "bc of root" (Some 1) (H.backbone_child a ~k:2 0);
  Alcotest.(check (option int)) "bp of 1" (Some 0) (H.backbone_parent a ~k:2 1);
  Alcotest.(check (option int)) "root has no bp" None (H.backbone_parent a ~k:2 0);
  (match H.rc_child a 0 with
  | None -> Alcotest.fail "level-2 node must hang a subtree"
  | Some r -> Alcotest.(check int) "hung root is level 1" 1 (H.level a ~k:2 r));
  (* the last backbone node is a level-2 leaf *)
  let rec last v = match H.backbone_child a ~k:2 v with None -> v | Some u -> last u in
  Alcotest.(check (option int)) "leaf has no bc" None (H.backbone_child a ~k:2 (last 0))

let test_instance_sizes () =
  let inst = H.uniform_instance ~k:2 ~len:8 ~seed:1L in
  Alcotest.(check int) "n = len + len^2" 72 (Graph.n (H.graph inst));
  let inst3 = H.uniform_instance ~k:3 ~len:4 ~seed:1L in
  Alcotest.(check int) "n = 4 + 16 + 64" 84 (Graph.n (H.graph inst3))

let test_cycle_backbone_levels () =
  let inst = H.cycle_backbone_instance ~k:2 ~len:5 ~seed:1L in
  let a = H.graph_access inst in
  (* every top node has a backbone child and parent (cycle) *)
  for v = 0 to 4 do
    if H.level a ~k:2 v = 2 then begin
      Alcotest.(check bool) "has bc" true (H.backbone_child a ~k:2 v <> None);
      Alcotest.(check bool) "has bp" true (H.backbone_parent a ~k:2 v <> None)
    end
  done

(* --- checker + deterministic solver -------------------------------------- *)

let test_deterministic_uniform_k2 () =
  List.iter
    (fun seed ->
      let inst = H.uniform_instance ~k:2 ~len:8 ~seed in
      let out, _ = solve_all inst (H.solve_deterministic ~k:2) in
      check_valid inst out)
    [ 1L; 2L; 3L ]

let test_deterministic_uniform_k3 () =
  let inst = H.uniform_instance ~k:3 ~len:4 ~seed:5L in
  let out, _ = solve_all inst (H.solve_deterministic ~k:3) in
  check_valid inst out

let test_deterministic_hard_k2 () =
  let inst, _ = H.hard_instance ~k:2 ~target_n:400 ~seed:7L in
  let out, _ = solve_all inst (H.solve_deterministic ~k:2) in
  check_valid inst out

let test_deterministic_cycle_backbone () =
  let inst = H.cycle_backbone_instance ~k:2 ~len:6 ~seed:9L in
  let out, _ = solve_all inst (H.solve_deterministic ~k:2) in
  check_valid inst out

let test_small_components_unanimous () =
  (* uniform len=8, n=72: threshold 2*ceil(sqrt(72)) = 18 > 8, so every
     component is shallow and must be unanimously colored by its anchor's
     input color. *)
  let inst = H.uniform_instance ~k:2 ~len:8 ~seed:11L in
  let out, _ = solve_all inst (H.solve_deterministic ~k:2) in
  check_valid inst out;
  let a = H.graph_access inst in
  Graph.iter_nodes (H.graph inst) (fun v ->
      match H.backbone_child a ~k:2 v with
      | Some u ->
          Alcotest.(check bool) "backbone unanimous" true (H.equal_output out.(v) out.(u))
      | None -> ())

let test_checker_rejects_decline_at_top () =
  let inst = H.uniform_instance ~k:2 ~len:8 ~seed:1L in
  let out, _ = solve_all inst (H.solve_deterministic ~k:2) in
  let out = Array.copy out in
  out.(0) <- H.Decline;
  Alcotest.(check bool) "rejected" false
    (Lcl.is_valid (H.problem ~k:2) (H.graph inst) ~input:(H.input inst)
       ~output:(fun v -> out.(v)))

let test_checker_rejects_unanchored_exempt () =
  let inst = H.uniform_instance ~k:2 ~len:8 ~seed:1L in
  let out, _ = solve_all inst (H.solve_deterministic ~k:2) in
  let a = H.graph_access inst in
  (* find a level-1 node and mark it exempt: forbidden by condition 3 *)
  let v1 =
    Graph.fold_nodes (H.graph inst) ~init:None ~f:(fun acc v ->
        match acc with Some _ -> acc | None -> if H.level a ~k:2 v = 1 then Some v else None)
  in
  match v1 with
  | None -> Alcotest.fail "no level-1 node"
  | Some v ->
      let out = Array.copy out in
      out.(v) <- H.Exempt;
      Alcotest.(check bool) "rejected" false
        (Lcl.is_valid (H.problem ~k:2) (H.graph inst) ~input:(H.input inst)
           ~output:(fun v -> out.(v)))

(* --- randomized way-point solver ------------------------------------------ *)

let test_waypoint_uniform_k2 () =
  List.iter
    (fun seed ->
      let inst = H.uniform_instance ~k:2 ~len:8 ~seed in
      let rand = rand_for inst (Int64.add seed 77L) in
      let out, _ = solve_all ~randomness:rand inst (H.solve_waypoint ~k:2 ()) in
      check_valid inst out)
    [ 1L; 2L ]

let test_waypoint_hard_k2 () =
  List.iter
    (fun seed ->
      let inst, _ = H.hard_instance ~k:2 ~target_n:400 ~seed in
      let rand = rand_for inst (Int64.add seed 177L) in
      let out, _ = solve_all ~randomness:rand inst (H.solve_waypoint ~k:2 ()) in
      check_valid inst out)
    [ 3L; 4L ]

let test_waypoint_hard_k3 () =
  let inst, _ = H.hard_instance ~k:3 ~target_n:3000 ~seed:5L in
  let rand = rand_for inst 205L in
  let out, _ = solve_all ~randomness:rand inst (H.solve_waypoint ~k:3 ()) in
  check_valid inst out

(* --- the volume separation (Table 1 row 3, measured) ---------------------- *)

let test_volume_separation_on_hard_instance () =
  (* Needs an n large enough that p = c·log n / sqrt n is genuinely
     small; at toy sizes the way-point rate saturates. *)
  let inst, hot = H.hard_instance ~k:2 ~target_n:30_000 ~seed:13L in
  let world = H.world inst in
  let n = Graph.n (H.graph inst) in
  (* measure from the middle of the top-level run of hard subtrees *)
  let det = Probe.run ~world ~origin:hot (H.solve_deterministic ~k:2).Lcl.solve in
  let rand = rand_for inst 14L in
  let way =
    Probe.run ~world ~randomness:rand ~origin:hot ((H.solve_waypoint ~k:2 ~c:1.5 ()).Lcl.solve)
  in
  Alcotest.(check bool)
    (Printf.sprintf "deterministic volume %d is a constant fraction of n=%d" det.Probe.volume n)
    true
    (det.Probe.volume * 4 >= n);
  Alcotest.(check bool)
    (Printf.sprintf "way-point volume %d well below deterministic %d" way.Probe.volume
       det.Probe.volume)
    true
    (way.Probe.volume * 3 <= det.Probe.volume);
  (* both stay at distance O(n^{1/2}) *)
  let root = int_of_float (Float.ceil (sqrt (float_of_int n))) in
  Alcotest.(check bool) "det distance O(sqrt n)" true (det.Probe.distance <= 8 * root);
  Alcotest.(check bool) "way distance O(sqrt n)" true (way.Probe.distance <= 8 * root)

let prop_deterministic_valid_uniform =
  QCheck.Test.make ~name:"hthc: deterministic solver valid on uniform instances" ~count:8
    QCheck.(pair (int_range 2 3) (int_range 3 7))
    (fun (k, len) ->
      let inst = H.uniform_instance ~k ~len ~seed:(Int64.of_int ((k * 100) + len)) in
      let out, _ = solve_all inst (H.solve_deterministic ~k) in
      Lcl.is_valid (H.problem ~k) (H.graph inst) ~input:(H.input inst) ~output:(fun v -> out.(v)))

let prop_waypoint_valid_hard =
  QCheck.Test.make ~name:"hthc: way-point solver valid on hard instances (whp)" ~count:6
    QCheck.(int_range 200 600)
    (fun target_n ->
      let inst, _ = H.hard_instance ~k:2 ~target_n ~seed:(Int64.of_int target_n) in
      let rand = rand_for inst (Int64.of_int (target_n + 9)) in
      let out, _ = solve_all ~randomness:rand inst (H.solve_waypoint ~k:2 ()) in
      Lcl.is_valid (H.problem ~k:2) (H.graph inst) ~input:(H.input inst)
        ~output:(fun v -> out.(v)))

let suites =
  [
    ( "hthc:structure",
      [
        Alcotest.test_case "levels uniform" `Quick test_levels_uniform;
        Alcotest.test_case "backbone edges" `Quick test_backbone_edges;
        Alcotest.test_case "instance sizes" `Quick test_instance_sizes;
        Alcotest.test_case "cycle backbone levels" `Quick test_cycle_backbone_levels;
      ] );
    ( "hthc:deterministic",
      [
        Alcotest.test_case "uniform k=2" `Quick test_deterministic_uniform_k2;
        Alcotest.test_case "uniform k=3" `Quick test_deterministic_uniform_k3;
        Alcotest.test_case "hard k=2" `Quick test_deterministic_hard_k2;
        Alcotest.test_case "cycle backbone" `Quick test_deterministic_cycle_backbone;
        Alcotest.test_case "small components unanimous" `Quick test_small_components_unanimous;
      ] );
    ( "hthc:checker",
      [
        Alcotest.test_case "rejects decline at top" `Quick test_checker_rejects_decline_at_top;
        Alcotest.test_case "rejects unanchored exempt" `Quick test_checker_rejects_unanchored_exempt;
      ] );
    ( "hthc:waypoint",
      [
        Alcotest.test_case "uniform k=2" `Quick test_waypoint_uniform_k2;
        Alcotest.test_case "hard k=2" `Quick test_waypoint_hard_k2;
        Alcotest.test_case "hard k=3" `Slow test_waypoint_hard_k3;
        Alcotest.test_case "volume separation" `Quick test_volume_separation_on_hard_instance;
      ] );
    ( "hthc:properties",
      [
        QCheck_alcotest.to_alcotest prop_deterministic_valid_uniform;
        QCheck_alcotest.to_alcotest prop_waypoint_valid_hard;
      ] );
  ]
