(* Quickstart: the volcomp API in one page.

   We build a LeafColoring instance (paper Section 3), run the paper's
   two algorithms on it — the deterministic O(log n)-distance solver and
   the randomized O(log n)-volume random walk — check the outputs with
   the problem's own local checker, and compare the measured costs.

   Run with: dune exec examples/quickstart.exe *)

module Graph = Vc_graph.Graph
module Probe = Vc_model.Probe
module Lcl = Vc_lcl.Lcl
module Randomness = Vc_rng.Randomness
module LC = Volcomp.Leaf_coloring
module Runner = Vc_measure.Runner

let () =
  (* 1. An instance: a random 501-node binary tree with random colors. *)
  let inst = LC.random_instance ~n:501 ~seed:2024L in
  let n = Graph.n inst.LC.graph in
  Fmt.pr "instance: %d-node random tree, max degree %d@." n (Graph.max_degree inst.LC.graph);

  (* 2. A world: the query-answering service the solvers probe. *)
  let world = LC.world inst in

  (* 3. Run one execution by hand: solve node 0's output. *)
  let one = Probe.run ~world ~origin:0 LC.solve_distance.Lcl.solve in
  Fmt.pr "node 0 (deterministic): output %a, volume %d, distance %d@."
    Fmt.(option Vc_graph.Tree_labels.pp_color)
    one.Probe.output one.Probe.volume one.Probe.distance;

  (* 4. Solve from every node, assemble and validate the labeling. *)
  let det_stats, det_valid =
    Runner.solve_and_check ~world ~problem:LC.problem ~graph:inst.LC.graph
      ~input:(LC.input inst) ~solver:LC.solve_distance ()
  in
  Fmt.pr "@.deterministic solver: %a@.  valid: %b@." Runner.pp_stats det_stats det_valid;

  (* 5. The randomized solver needs per-node private random strings. *)
  let randomness = Randomness.create ~seed:7L ~n () in
  let rw_stats, rw_valid =
    Runner.solve_and_check ~world ~problem:LC.problem ~graph:inst.LC.graph
      ~input:(LC.input inst) ~solver:LC.solve_random_walk ~randomness ()
  in
  Fmt.pr "@.random-walk solver:   %a@.  valid: %b@." Runner.pp_stats rw_stats rw_valid;

  (* 6. The paper's point, visible in the numbers: both solvers see
     O(log n) FAR (distance), but only the randomized one sees O(log n)
     WIDE (volume) — the deterministic solver's volume blows up. *)
  Fmt.pr "@.seeing far vs. seeing wide:@.";
  Fmt.pr "  deterministic: distance %d, volume %d@." det_stats.Runner.max_distance
    det_stats.Runner.max_volume;
  Fmt.pr "  randomized:    distance %d, volume %d@." rw_stats.Runner.max_distance
    rw_stats.Runner.max_volume;
  assert (det_valid && rw_valid)
