(** Hierarchical 2½-coloring, Hierarchical-THC(k) (paper Section 5).

    The input is a colored tree labeling that induces a {e hierarchical
    forest} [G_k] (Definition 5.1): level-ℓ nodes form backbone
    paths/cycles linked by left-child pointers, and every level-ℓ node
    (ℓ ≥ 2) hangs a level-(ℓ−1) component from its right-child pointer.
    Outputs are colors in {R, B, D, X} ("red", "blue", {e decline},
    {e exempt}) subject to Definition 5.5: short backbones must be
    colored unanimously by their anchor's input color, long backbones may
    either decline (below level k) or break themselves into short
    segments between exempt nodes — and a node may only be exempt if the
    subtree hanging below it was actually solved.

    Complexities (Theorem 5.9): R-DIST = D-DIST = Θ(n^{1/k}),
    R-VOL = Õ(n^{1/k}), D-VOL = Θ̃(n).  The deterministic solver is the
    paper's Algorithm 2 (RecursiveHTHC); the randomized solver is its
    way-point modification (Proposition 5.14) in which recursive descent
    happens only at nodes that elect themselves way-points with
    probability p = c·log n / n^{1/k} using their private randomness. *)

module TL = Vc_graph.Tree_labels
module Graph = Vc_graph.Graph

type node_input = Leaf_coloring.node_input
(** Same input as LeafColoring: pointer triple plus input color. *)

type output =
  | Chromatic of TL.color  (** R or B *)
  | Decline  (** D *)
  | Exempt  (** X *)

val equal_output : output -> output -> bool
val pp_output : Format.formatter -> output -> unit

type instance = {
  base : Leaf_coloring.instance;
  k : int;
}

val input : instance -> Graph.node -> node_input
val world : instance -> node_input Vc_model.World.t
val graph : instance -> Graph.t

(** {1 Structure} *)

type 'a access = {
  degree : Graph.node -> int;
  node_input : Graph.node -> node_input;
  follow : Graph.node -> TL.ptr -> Graph.node;
}
(** Data accessors shared by the global checker (free) and the
    probe-model solvers (each [follow] is a query). *)

val graph_access : instance -> unit access

val level : 'a access -> k:int -> Graph.node -> int
(** The node's level: 1 if its right-child pointer is ⊥/invalid,
    otherwise one more than its right child's level (Definition 5.1).
    Levels above [k] (including pointer cycles) are reported as
    [k + 1]. *)

val backbone_child : 'a access -> k:int -> Graph.node -> Graph.node option
(** The [G_k] left-child edge target: present when the left pointer is
    reciprocated and the child has the same level.  [None] means the
    node is a level-ℓ leaf (Definition 5.2). *)

val backbone_parent : 'a access -> k:int -> Graph.node -> Graph.node option
(** Symmetric; [None] means the node is a level-ℓ root. *)

val rc_child : 'a access -> Graph.node -> Graph.node option
(** The reciprocated right-child edge target (the root of the hung
    level-(ℓ−1) component). *)

val problem : k:int -> (node_input, output) Vc_lcl.Lcl.t
(** The validity conditions of Definition 5.5. *)

(** {1 Instance generators} *)

val uniform_instance : k:int -> len:int -> seed:int64 -> instance
(** Every backbone (at every level) is a path of length [len]; each node
    at level ≥ 2 hangs one level-below component.  Size ≈ [len^k].
    With [len <= 2·n^{1/k}] all components are shallow — the
    Θ(n^{1/k})-distance workload of Proposition 5.13. *)

val hard_instance : k:int -> target_n:int -> seed:int64 -> instance * Graph.node
(** The volume-hard workload: a deep spine at every level whose middle
    carries a run of recursively hard (hence not cheaply solvable)
    subtrees, forcing Algorithm 2 to evaluate one subtree per search
    step (volume Θ̃(n)) while the way-point solver evaluates only
    O(log n) of them (volume Õ(n^{1/k})).  The returned node sits in
    the middle of the top-level run — the worst start point. *)

val cycle_backbone_instance : k:int -> len:int -> seed:int64 -> instance
(** Like {!uniform_instance} but the top-level backbone is a cycle
    (exercises Observation 5.4's cycle case and the min-ID anchor
    rule). *)

(** {1 Algorithms} *)

val kth_root : int -> int -> int
(** [kth_root n k] is ⌈n^{1/k}⌉, the unit of the scan threshold. *)

val backbone_solve :
  bc:(Graph.node -> Graph.node option) ->
  bp:(Graph.node -> Graph.node option) ->
  chi:(Graph.node -> TL.color) ->
  rc_solved:(Graph.node -> bool) ->
  decline_allowed:bool ->
  threshold:int ->
  Graph.node ->
  output
(** One deep-backbone coloring step of Algorithm 2, abstracted over the
    backbone accessors so Hybrid-THC can reuse it: exempt if the node's
    own subtree is solved, otherwise segment-color between the nearest
    anchors (solved nodes or backbone ends) within [threshold], else
    decline (when allowed). *)

val solve_access :
  k:int ->
  is_waypoint:(Graph.node -> bool) ->
  access:'a access ->
  n:int ->
  id:(Graph.node -> int) ->
  Graph.node ->
  output
(** The full RecursiveHTHC decision procedure over abstract accessors
    (used by HH-THC to run the bit-0 side against its own input type).
    [is_waypoint] gates recursive descent: the constant-true predicate
    gives Algorithm 2, a sampled predicate gives Proposition 5.14. *)

val solve_deterministic : k:int -> (node_input, output) Vc_lcl.Lcl.solver
(** Algorithm 2, RecursiveHTHC: distance O(k·n^{1/k}); volume up to
    Θ̃(n) on deep instances. *)

val solve_waypoint : k:int -> ?c:float -> unit -> (node_input, output) Vc_lcl.Lcl.solver
(** Proposition 5.14: way-point sampling with probability
    [p = c·log n / n^{1/k}] (default [c = 3.0], the proof's constant).
    Smaller [c] trades volume against failure probability — the
    ablation bench sweeps it. *)

val solvers : k:int -> (node_input, output) Vc_lcl.Lcl.solver list
