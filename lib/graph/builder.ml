let path count =
  if count < 1 then invalid_arg "Builder.path: n must be >= 1";
  let edges = List.init (count - 1) (fun v -> (v, v + 1)) in
  Graph.of_edges ~n:count edges

let cycle count =
  if count < 3 then invalid_arg "Builder.cycle: n must be >= 3";
  (* Build adjacency directly so that port 1 is the successor and port 2
     the predecessor, giving a globally consistent orientation. *)
  let adj = Array.init count (fun v -> [| (v + 1) mod count; (v + count - 1) mod count |]) in
  let ids = Array.init count (fun v -> v + 1) in
  Graph.create ~ids ~adj

let torus ~w ~h =
  if w < 3 || h < 3 then invalid_arg "Builder.torus: w and h must be >= 3";
  (* Build adjacency directly so every node carries the grid normal form
     in its port numbering: port 1 = +x (east), port 2 = -x (west),
     port 3 = +y (north), port 4 = -y (south), all with wraparound. *)
  let count = w * h in
  let adj =
    Array.init count (fun v ->
        let x = v mod w and y = v / w in
        [|
          (y * w) + ((x + 1) mod w);
          (y * w) + ((x + w - 1) mod w);
          (((y + 1) mod h) * w) + x;
          (((y + h - 1) mod h) * w) + x;
        |])
  in
  let ids = Array.init count (fun v -> v + 1) in
  Graph.create ~ids ~adj

let tree_parent ~depth v =
  ignore depth;
  if v = 0 then None else Some ((v - 1) / 2)

let tree_depth_of v =
  let rec loop v d = if v = 0 then d else loop ((v - 1) / 2) (d + 1) in
  loop v 0

let tree_left ~depth v =
  let c = (2 * v) + 1 in
  if tree_depth_of v >= depth then None else Some c

let tree_right ~depth v =
  let c = (2 * v) + 2 in
  if tree_depth_of v >= depth then None else Some c

let complete_binary_tree ~depth =
  if depth < 0 then invalid_arg "Builder.complete_binary_tree: depth must be >= 0";
  let count = (1 lsl (depth + 1)) - 1 in
  let adj =
    Array.init count (fun v ->
        let parent = match tree_parent ~depth v with None -> [] | Some p -> [ p ] in
        let kids =
          match (tree_left ~depth v, tree_right ~depth v) with
          | Some l, Some r -> [ l; r ]
          | None, None -> []
          | Some l, None -> [ l ]
          | None, Some r -> [ r ]
        in
        Array.of_list (parent @ kids))
  in
  let ids = Array.init count (fun v -> v + 1) in
  Graph.create ~ids ~adj

let tree_root _g = 0

let leaves_of_complete_tree ~depth =
  let first = (1 lsl depth) - 1 in
  List.init (1 lsl depth) (fun i -> first + i)

let random_binary_tree ~n:requested ~rng =
  if requested < 1 then invalid_arg "Builder.random_binary_tree: n must be >= 1";
  let internal = (requested - 1) / 2 in
  let count = (2 * internal) + 1 in
  (* Grow by repeatedly picking a random current leaf and giving it two
     children.  Node 0 is the root. *)
  let parent = Array.make count (-1) in
  let children = Array.make count None in
  let leaves = ref [ 0 ] in
  let next = ref 1 in
  for _ = 1 to internal do
    let leaf_list = !leaves in
    let len = List.length leaf_list in
    let pick = Vc_rng.Splitmix.int rng ~bound:len in
    let v = List.nth leaf_list pick in
    let l = !next and r = !next + 1 in
    next := !next + 2;
    parent.(l) <- v;
    parent.(r) <- v;
    children.(v) <- Some (l, r);
    leaves := l :: r :: List.filter (fun u -> u <> v) leaf_list
  done;
  let adj =
    Array.init count (fun v ->
        let up = if parent.(v) >= 0 then [ parent.(v) ] else [] in
        let down = match children.(v) with None -> [] | Some (l, r) -> [ l; r ] in
        Array.of_list (up @ down))
  in
  let ids = Array.init count (fun v -> v + 1) in
  Graph.create ~ids ~adj

let disjoint_union graphs =
  let total = List.fold_left (fun acc g -> acc + Graph.n g) 0 graphs in
  let adj = Array.make total [||] in
  let offsets = Array.make (List.length graphs) 0 in
  let off = ref 0 in
  List.iteri
    (fun i g ->
      offsets.(i) <- !off;
      Graph.iter_nodes g (fun v ->
          adj.(!off + v) <- Array.map (fun w -> !off + w) (Graph.neighbors g v));
      off := !off + Graph.n g)
    graphs;
  let ids = Array.init total (fun v -> v + 1) in
  (Graph.create ~ids ~adj, offsets)

let attach g ~extra_edges =
  let count = Graph.n g in
  let adj = Array.init count (fun v -> Array.to_list (Graph.neighbors g v)) in
  List.iter
    (fun (u, v) ->
      adj.(u) <- adj.(u) @ [ v ];
      adj.(v) <- adj.(v) @ [ u ])
    extra_edges;
  let adj = Array.map Array.of_list adj in
  let ids = Array.init count (fun v -> Graph.id g v) in
  Graph.create ~ids ~adj
