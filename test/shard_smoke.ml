(* @shard-smoke driver: worker-kill recovery must be deterministic, not
   merely likely.  Each run boots a fresh 2-worker sharded tier, drives
   a verified closed-loop mix through it (every reply byte-compared to
   the in-process twin), then injects the canonical fault — SIGSTOP a
   worker so a request is provably in flight, SIGKILL it — and requires
   the structured [worker_lost] reply, the respawn, the ledger re-warm
   and a byte-identical post-recovery answer.  The exit status is 0 only
   if every run recovers: 20/20, not 19/20.

   This executable stays single-domain on purpose: the supervisor runs
   in a forked child and its workers are forked grandchildren
   ({!Supervisor.fork_spawn}), which is only sound while no domain has
   ever been spawned here.  The emitted JSON (runs, recoveries, the last
   run's merged stats payload) is validated by the strict independent
   parser in the dune alias. *)

module Json = Vc_obs.Json
module Metrics = Vc_obs.Metrics
module Protocol = Vc_serve.Protocol
module Handler = Vc_serve.Handler
module Server = Vc_serve.Server
module Loadgen = Vc_serve.Loadgen
module Supervisor = Vc_serve.Supervisor
module Ring = Vc_serve.Ring
module Registry = Vc_check.Registry

let workers = 2
let cache_capacity = 4
let queue_depth = 16
let problem = "DegreeParity"
let size = 16

(* --- tiny client ------------------------------------------------------------- *)

let send_raw fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let send_request fd req =
  send_raw fd (Protocol.frame (Json.to_string (Protocol.request_to_json req)))

exception Failed of string

let failf fmt = Printf.ksprintf (fun m -> raise (Failed m)) fmt

let read_bodies fd count =
  let dec = Protocol.decoder () in
  let buf = Bytes.create 4096 in
  let got = ref [] in
  while List.length !got < count do
    match Protocol.next_frame dec with
    | Ok (Some body) -> got := body :: !got
    | Error msg -> failf "reply framing: %s" msg
    | Ok None -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> failf "supervisor closed the connection"
        | n -> Protocol.feed dec buf n)
  done;
  List.rev !got

let read_body fd = List.hd (read_bodies fd 1)

let parse_reply body =
  match Result.bind (Json.parse body) Protocol.reply_of_json with
  | Ok r -> r
  | Error msg -> failf "unparseable reply %s: %s" body msg

let stats_payload body =
  match (parse_reply body).Protocol.body with
  | Ok payload -> payload
  | Error (c, m) -> failf "stats errored %s: %s" (Protocol.code_to_string c) m

let shard_row payload shard =
  match Json.member payload "shards" with
  | Some (Json.List rows) -> (
      match
        List.find_opt
          (fun row -> Option.bind (Json.member row "shard") Json.to_int = Some shard)
          rows
      with
      | Some row -> row
      | None -> failf "no stats row for shard %d" shard)
  | _ -> failf "stats payload lacks shards rows"

let row_int row key =
  match Option.bind (Json.member row key) Json.to_int with
  | Some v -> v
  | None -> failf "stats row lacks %s" key

let row_alive row =
  match Option.bind (Json.member row "alive") Json.to_bool with
  | Some b -> b
  | None -> failf "stats row lacks alive"

(* --- one run ------------------------------------------------------------------ *)

let seed_for ring shard =
  let rec go seed =
    if Ring.lookup_session ring ~problem ~size ~seed = shard then seed else go (Int64.add seed 1L)
  in
  go 1L

let expect_ok twin ~id q =
  match Handler.handle twin q with
  | Ok payload -> Json.to_string (Protocol.ok_reply ~id payload)
  | Error (_, msg) -> failf "twin handler failed: %s" msg

(* Boot a tier, run the verified mix, kill-and-recover, shut down.
   Returns the final merged stats payload; raises [Failed] on any
   deviation. *)
let one_run ~run =
  let dir = Filename.temp_file "vc_shard_smoke" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "s.sock" in
  let listen = Server.listen_unix ~path in
  match Unix.fork () with
  | 0 ->
      let code =
        try
          ignore
            (Supervisor.run ~workers ~cache_capacity ~queue_depth
               ~spawn:
                 (Supervisor.fork_spawn (fun () ->
                      Metrics.set_enabled true;
                      Handler.create ~cache_capacity ()))
               ~listen ()
              : int);
          0
        with _ -> 1
      in
      Unix._exit code
  | pid ->
      Unix.close listen;
      let finally () =
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] pid : int * Unix.process_status)
         with Unix.Unix_error _ -> ());
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        try Unix.rmdir dir with Unix.Unix_error _ -> ()
      in
      Fun.protect ~finally (fun () ->
          let connect () =
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_UNIX path);
            fd
          in
          (* phase 1: deterministic verified mix over both shards; the
             seed varies per run so the 20 runs are 20 different loads *)
          let mix = [ ("probe", 5); ("solve", 1); ("warm", 2); ("stats", 1) ] in
          let cfg =
            {
              Loadgen.clients = 3;
              requests = 12;
              mix;
              seed = Int64.of_int (1000 + run);
              deadline_ms = None;
              verify = true;
              shutdown = false;
            }
          in
          (match Loadgen.run ~connect cfg with
          | Error msg -> failf "loadgen: %s" msg
          | Ok s ->
              if s.Loadgen.s_mismatches > 0 then
                failf "loadgen: %d byte mismatches" s.Loadgen.s_mismatches;
              if s.Loadgen.s_ok <> s.Loadgen.s_requests then
                failf "loadgen: %d/%d ok" s.Loadgen.s_ok s.Loadgen.s_requests);
          (* phase 2: the canonical fault, aimed at shard 0 *)
          let fd = connect () in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              let twin = Handler.create () in
              let ring = Ring.create (List.init workers Fun.id) in
              let q = Protocol.Probe { problem; size; seed = seed_for ring 0; origin = 0 } in
              let q_fence = Protocol.Probe { problem; size; seed = seed_for ring 1; origin = 0 } in
              let ask id query =
                send_request fd { Protocol.id = id; deadline_ms = None; query };
                read_body fd
              in
              let check_identical ~what ~id ~query body =
                let want = expect_ok twin ~id query in
                if body <> want then failf "%s: reply differs from single-process bytes" what
              in
              check_identical ~what:"warm-up" ~id:1 ~query:q (ask 1 q);
              let pid0 =
                let r = shard_row (stats_payload (ask 2 Protocol.Stats)) 0 in
                if not (row_alive r) then failf "shard 0 dead before fault";
                row_int r "pid"
              in
              Unix.kill pid0 Sys.sigstop;
              send_request fd { Protocol.id = 3; deadline_ms = None; query = q };
              (* fence through the other shard: its reply proves the
                 supervisor has already read (and routed) id 3, so the
                 kill below provably lands on a worker holding a request
                 — and proves shard 1 keeps serving while 0 is wedged *)
              send_request fd { Protocol.id = 4; deadline_ms = None; query = q_fence };
              check_identical ~what:"fence via live shard" ~id:4 ~query:q_fence (read_body fd);
              Unix.kill pid0 Sys.sigkill;
              (match (parse_reply (read_body fd)).Protocol.body with
              | Error (Protocol.Worker_lost, _) -> ()
              | Error (c, m) ->
                  failf "expected worker_lost, got %s: %s" (Protocol.code_to_string c) m
              | Ok _ -> failf "in-flight request answered by a dead worker");
              check_identical ~what:"post-recovery" ~id:5 ~query:q (ask 5 q);
              let final = stats_payload (ask 6 Protocol.Stats) in
              let r0 = shard_row final 0 and r1 = shard_row final 1 in
              if not (row_alive r0 && row_alive r1) then failf "a shard is down after recovery";
              if row_int r0 "respawns" <> 1 then
                failf "shard 0 respawns = %d, want 1" (row_int r0 "respawns");
              if row_int r1 "respawns" <> 0 then failf "shard 1 was disturbed";
              if row_int r0 "warm" < 1 then failf "shard 0 warm ledger lost";
              (match (parse_reply (ask 7 Protocol.Shutdown)).Protocol.body with
              | Ok _ -> ()
              | Error (c, m) -> failf "shutdown errored %s: %s" (Protocol.code_to_string c) m);
              final))

(* --- timed re-warm comparison -------------------------------------------------- *)

(* After SIGKILL, how long until the killed shard answers again?  Once
   cold (the ledger re-warm rebuilds the instance) and once against a
   snapshot store (the re-warm mmap-loads it).  At this size the cold
   build costs hundreds of milliseconds and the load a few, so the gap
   survives single-CPU scheduling noise; still, the numbers are
   report-only — the hard gates on the snapshot path live in the bench
   harness and @snap-smoke. *)

let rewarm_problem = "CycleColoring3"
let rewarm_size = (1 lsl 18) - 1

let timed_rewarm ?snap_dir () =
  let dir = Filename.temp_file "vc_shard_rewarm" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let path = Filename.concat dir "s.sock" in
  let listen = Server.listen_unix ~path in
  match Unix.fork () with
  | 0 ->
      let code =
        try
          ignore
            (Supervisor.run ~workers:1 ~cache_capacity ~queue_depth
               ~spawn:
                 (Supervisor.fork_spawn (fun () ->
                      Metrics.set_enabled true;
                      let store = Option.map (fun d -> Registry.store ~dir:d) snap_dir in
                      Handler.create ~cache_capacity ?store ()))
               ~listen ()
              : int);
          0
        with _ -> 1
      in
      Unix._exit code
  | pid ->
      Unix.close listen;
      let finally () =
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] pid : int * Unix.process_status)
         with Unix.Unix_error _ -> ());
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        try Unix.rmdir dir with Unix.Unix_error _ -> ()
      in
      Fun.protect ~finally (fun () ->
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX path);
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              let q =
                Protocol.Warm { problem = rewarm_problem; size = rewarm_size; seed = 1L }
              in
              let ask id query =
                send_request fd { Protocol.id = id; deadline_ms = None; query };
                read_body fd
              in
              (* first warm builds the session (and, with a store,
                 publishes the snapshot it will re-load after the kill) *)
              (match (parse_reply (ask 1 q)).Protocol.body with
              | Ok _ -> ()
              | Error (c, m) -> failf "rewarm warm-up errored %s: %s" (Protocol.code_to_string c) m);
              let pid0 =
                let r = shard_row (stats_payload (ask 2 Protocol.Stats)) 0 in
                row_int r "pid"
              in
              Unix.kill pid0 Sys.sigkill;
              let t0 = Unix.gettimeofday () in
              (* retry through the worker_lost window; the first Ok reply
                 marks the shard re-warmed and serving again *)
              let rec recovered id =
                match (parse_reply (ask id q)).Protocol.body with
                | Ok _ -> Unix.gettimeofday () -. t0
                | Error (Protocol.Worker_lost, _) -> recovered (id + 1)
                | Error (c, m) ->
                    failf "rewarm probe errored %s: %s" (Protocol.code_to_string c) m
              in
              let elapsed = recovered 3 in
              (match (parse_reply (ask 99 Protocol.Shutdown)).Protocol.body with
              | Ok _ -> ()
              | Error (c, m) -> failf "shutdown errored %s: %s" (Protocol.code_to_string c) m);
              elapsed *. 1e9))

let with_tmp_dir prefix f =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let finally () =
    (match Sys.readdir dir with
    | names ->
        Array.iter
          (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
          names
    | exception Sys_error _ -> ());
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally (fun () -> f dir)

(* --- driver ------------------------------------------------------------------- *)

let usage () =
  prerr_endline "usage: shard_smoke [--runs N] [--json PATH]";
  exit 2

let () =
  let runs = ref 20 and json_path = ref None in
  let rec parse = function
    | [] -> ()
    | "--runs" :: n :: rest ->
        (match int_of_string_opt n with Some v when v > 0 -> runs := v | _ -> usage ());
        parse rest
    | "--json" :: p :: rest ->
        json_path := Some p;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let recovered = ref 0 in
  let failures = ref [] in
  let last_stats = ref Json.Null in
  for run = 1 to !runs do
    match one_run ~run with
    | stats ->
        incr recovered;
        last_stats := stats
    | exception Failed msg -> failures := Printf.sprintf "run %d: %s" run msg :: !failures
    | exception e -> failures := Printf.sprintf "run %d: %s" run (Printexc.to_string e) :: !failures
  done;
  (* timed re-warm: rebuild vs snapshot-load after the same SIGKILL *)
  let rewarm =
    match
      let build_ns = timed_rewarm () in
      let snap_ns = with_tmp_dir "vc_shard_rewarm_store" (fun d -> timed_rewarm ~snap_dir:d ()) in
      (build_ns, snap_ns)
    with
    | build_ns, snap_ns ->
        Printf.printf
          "shard-smoke: re-warm after SIGKILL (%s n=%d): rebuild %.1f ms, snapshot %.1f ms \
           (%.1fx faster with the store)\n"
          rewarm_problem rewarm_size (build_ns /. 1e6) (snap_ns /. 1e6) (build_ns /. snap_ns);
        Some (build_ns, snap_ns)
    | exception Failed msg ->
        failures := Printf.sprintf "rewarm timing: %s" msg :: !failures;
        None
    | exception e ->
        failures := Printf.sprintf "rewarm timing: %s" (Printexc.to_string e) :: !failures;
        None
  in
  let ok = !recovered = !runs && rewarm <> None in
  let summary =
    Json.Obj
      [
        ("workers", Json.Int workers);
        ("runs", Json.Int !runs);
        ("recovered", Json.Int !recovered);
        ("ok", Json.Bool ok);
        ("failures", Json.List (List.rev_map (fun m -> Json.String m) !failures));
        ("rewarm",
         (match rewarm with
         | Some (build_ns, snap_ns) ->
             Json.Obj
               [
                 ("problem", Json.String rewarm_problem);
                 ("size", Json.Int rewarm_size);
                 ("rebuild_ns", Json.Float build_ns);
                 ("snapshot_ns", Json.Float snap_ns);
                 ("speedup", Json.Float (build_ns /. snap_ns));
               ]
         | None -> Json.Null));
        ("last_run_stats", !last_stats);
      ]
  in
  (match !json_path with
  | Some path ->
      let oc = open_out path in
      output_string oc (Json.to_string summary);
      output_char oc '\n';
      close_out oc
  | None -> ());
  Printf.printf "shard-smoke: %d/%d runs recovered (%d workers)\n" !recovered !runs workers;
  List.iter prerr_endline (List.rev !failures);
  exit (if ok then 0 else 1)
