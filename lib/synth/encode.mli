(** CNF encoding of "∃ a well-formed IR program with volume ≤ v and
    radius ≤ r solving the LCL on every instance of a finite family",
    plus the CEGIS loop that grows the family from counterexamples.

    The search space is a {e template}: an array of instruction slots,
    each with a finite menu drawn from the forward-only fragment of
    {!Vc_ir.Ir} (probe, move, forward jump/branch, constant output) —
    the fragment in which every slot executes at most once, so the
    batched-executor semantics unroll into a finite DAG per
    (instance, origin) with no time dimension.  One exactly-one choice
    per slot is shared across all instances; per instance the encoder
    symbolically executes every reachable (pc, registers, visited-set)
    state, forbids every truncation (invalid port, volume above [v],
    distance above [r], voluntary halt), forces an output literal at
    every output leaf, and conjoins the problem's local checker by
    enumerating output assignments over each node's checking ball and
    blocking the invalid ones.  {!Vc_ir.Ir.validate}'s rules hold by
    construction of {!check_template}, so every decoded witness
    validates.

    The CEGIS loop: solve; decode the candidate through the {!Vc_ir.Ir}
    JSON codec (so the wire path is exercised, not just the in-memory
    constructors); run it with {!Vc_exec.Exec.run_batch} from every
    origin of every corpus instance, byte-comparing each result against
    the reference {!Vc_exec.Exec.run}; check the assembled outputs with
    the full LCL checker.  A failing instance joins the encoding and
    the loop repeats; a failure on an already-encoded instance is an
    encoding-divergence bug and reported as [Error], never as a
    verdict. *)

module Graph = Vc_graph.Graph

type template = {
  t_name : string;
  n_regs : int;
  obs_arity : int;
  n_consts : int;
  slots : Vc_ir.Ir.instr array array;
      (** [slots.(s)] is slot [s]'s menu.  Allowed instructions:
          [Probe], [Move], [Jump], [Branch] (targets strictly beyond
          [s]) and [Out_const]; the last slot's menu must be all
          [Out_const]. *)
}

val check_template : template -> (unit, string) result
(** Structural check: non-empty menus, register/field/const/port
    ranges, strictly forward control flow, terminal last slot, no
    instruction outside the fragment. *)

(** A problem together with its certificate corpus, packed so the
    encoder is monomorphic in the instance data. *)
type universe =
  | U : {
      u_name : string;
      lcl : ('i, 'o) Vc_lcl.Lcl.t;
      consts : 'o array;  (** output alphabet; [Out_const k] means [consts.(k)] *)
      obs : 'i -> int -> int;  (** observation projection, arity [obs_arity] *)
      instances : (string * Graph.t * (Graph.node -> 'i)) array;
          (** CEGIS corpus in priority order; the first [seed_instances]
              are encoded up front. *)
    }
      -> universe

type outcome =
  | Synthesized of Vc_ir.Ir.program
  | Unsat_at_budget

type report = {
  outcome : outcome;
  cegis_iters : int;  (** number of [solve] calls *)
  instances_encoded : int;
  sat_stats : Sat.stats;
  n_vars : int;
  n_clauses : int;
  certified : bool option;
      (** [Some true] iff the final UNSAT was DRUP-certified; [None]
          when SAT or when certification was not requested *)
  wall_s : float;  (** wall-clock seconds for the whole search *)
}

val recheck : universe -> Vc_ir.Ir.program -> (unit, string) result
(** Independent re-examination of a witness: {!Vc_ir.Ir.validate}, then
    on every corpus instance run it from every origin with both
    executors (byte-compared), demand completion within the declared
    envelope, and run the full LCL checker.  What oracle probe 11 uses
    to distrust {!synthesize}'s own bookkeeping. *)

val synthesize :
  ?seed_instances:int ->
  ?max_cegis:int ->
  ?certify:bool ->
  ?dimacs_out:string ->
  universe ->
  template:template ->
  volume:int ->
  radius:int ->
  (report, string) result
(** Search for a program of the template with volume ≤ [volume] and
    distance ≤ [radius] on every corpus instance.  [volume < 1] or
    [radius < 0] is [Unsat_at_budget] by the model's axioms (the origin
    alone already costs volume 1).  [certify] (default [false]) replays
    the DRUP log on an UNSAT verdict.  [dimacs_out] writes the final
    CNF for external cross-checking.  Deterministic.  [Error] on
    malformed templates, oversized instances (> 62 nodes), checker-ball
    enumeration overflow, CEGIS iteration overflow, or encoding
    divergence. *)
