lib/model/probe.ml: Fmt Hashtbl List Vc_graph Vc_rng View World
