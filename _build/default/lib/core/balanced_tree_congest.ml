module TL = Vc_graph.Tree_labels
module Graph = Vc_graph.Graph
module Congest = Vc_model.Congest
module BT = Balanced_tree

(* Pointer-target identifiers: what a node's five pointers point at,
   expressed as ids so neighbors can evaluate reciprocity. *)
type ptr_ids = {
  p_parent : int option;
  p_left : int option;
  p_right : int option;
  p_ln : int option;
  p_rn : int option;
}

type message =
  | Hello of int  (** my identifier *)
  | Pointers of ptr_ids
  | Internality of bool
  | Status of TL.status
  | Defect

(* Per-port knowledge about a neighbor, filled in round by round. *)
type nbr = {
  mutable nid : int option;
  mutable ptrs : ptr_ids option;
  mutable internal : bool option;
  mutable status : TL.status option;
}

type state = {
  me : BT.node_input;
  my_id : int;
  degree : int;
  n : int;
  nbrs : nbr array;  (* indexed by port - 1 *)
  mutable round_no : int;
  mutable my_internal : bool;
  mutable my_status : TL.status;
  mutable compatible : bool;
  mutable defect_port : int option;  (* first child port a defect came from *)
  mutable relayed : bool;
}

let valid st p = p <> TL.bot && p >= 1 && p <= st.degree

let nbr st p = st.nbrs.(p - 1)

let nbr_id st p = if valid st p then (nbr st p).nid else None

let broadcast st msg = List.init st.degree (fun i -> (i + 1, msg))

let my_ptr_ids st =
  {
    p_parent = nbr_id st st.me.BT.parent;
    p_left = nbr_id st st.me.BT.left;
    p_right = nbr_id st st.me.BT.right;
    p_ln = nbr_id st st.me.BT.left_nbr;
    p_rn = nbr_id st st.me.BT.right_nbr;
  }

(* Reciprocated child: my pointer [p] is a valid port and the node there
   says its parent is me. *)
let reciprocated_child st p =
  valid st p
  &&
  match (nbr st p).ptrs with
  | Some t -> t.p_parent = Some st.my_id
  | None -> false

let compute_internal st =
  let i = st.me in
  valid st i.BT.left && valid st i.BT.right && i.BT.left <> i.BT.right
  && i.BT.parent <> i.BT.left && i.BT.parent <> i.BT.right
  && reciprocated_child st i.BT.left
  && reciprocated_child st i.BT.right

let compute_status st =
  if st.my_internal then TL.Internal
  else if valid st st.me.BT.parent && (nbr st st.me.BT.parent).internal = Some true then TL.Leaf
  else TL.Inconsistent

(* Definition 4.2 over the gathered tables — the message-passing twin of
   Balanced_tree.compatible_gen. *)
let compute_compatible st =
  match st.my_status with
  | TL.Inconsistent -> false
  | (TL.Internal | TL.Leaf) as mine ->
      let i = st.me in
      let status_of p = if valid st p then (nbr st p).status else None in
      let ptrs_of p = if valid st p then (nbr st p).ptrs else None in
      let lateral_ok p ~mirror =
        p = TL.bot
        ||
        match (status_of p, ptrs_of p) with
        | Some s, Some t ->
            TL.equal_status s mine && mirror t = Some st.my_id
        | (None | Some _), _ -> false
      in
      let agreement =
        lateral_ok i.BT.left_nbr ~mirror:(fun t -> t.p_rn)
        && lateral_ok i.BT.right_nbr ~mirror:(fun t -> t.p_ln)
      in
      (match mine with
      | TL.Leaf -> agreement
      | TL.Internal ->
          agreement
          &&
          let lc = ptrs_of i.BT.left and rc = ptrs_of i.BT.right in
          let lc_id = nbr_id st i.BT.left and rc_id = nbr_id st i.BT.right in
          (match (lc, rc) with
          | Some lc, Some rc ->
              (* siblings *)
              lc.p_rn = rc_id && lc.p_rn <> None
              && rc.p_ln = lc_id && rc.p_ln <> None
              (* persistence right: RN(RC(v)) = LC(RN(v)) *)
              && (i.BT.right_nbr = TL.bot
                 ||
                 match ptrs_of i.BT.right_nbr with
                 | Some w -> rc.p_rn = w.p_left && rc.p_rn <> None
                 | None -> false)
              (* persistence left: LN(LC(v)) = RC(LN(v)) *)
              && (i.BT.left_nbr = TL.bot
                 ||
                 match ptrs_of i.BT.left_nbr with
                 | Some u -> lc.p_ln = u.p_right && lc.p_ln <> None
                 | None -> false)
          | (None | Some _), _ -> false)
      | TL.Inconsistent -> false)

(* The port of my G_T parent: my parent pointer resolves and that node is
   internal with me as one of its reciprocated children. *)
let gt_parent_port st =
  let p = st.me.BT.parent in
  if not (valid st p) then None
  else
    match ((nbr st p).internal, (nbr st p).ptrs) with
    | Some true, Some t ->
        if t.p_left = Some st.my_id || t.p_right = Some st.my_id then Some p else None
    | (Some _ | None), _ -> None

let defect_announcement st =
  match gt_parent_port st with
  | Some p when not st.relayed ->
      st.relayed <- true;
      [ (p, Defect) ]
  | Some _ | None ->
      st.relayed <- true;
      []

let log2_ceil = Probe_tree.log2_ceil

let decide st =
  match st.my_status with
  | TL.Inconsistent -> { BT.verdict = BT.Bal; port = TL.bot }
  | TL.Leaf ->
      if st.compatible then { BT.verdict = BT.Bal; port = st.me.BT.parent }
      else { BT.verdict = BT.Unbal; port = TL.bot }
  | TL.Internal ->
      if not st.compatible then { BT.verdict = BT.Unbal; port = TL.bot }
      else (
        match st.defect_port with
        | Some q -> { BT.verdict = BT.Unbal; port = q }
        | None -> { BT.verdict = BT.Bal; port = st.me.BT.parent })

let algorithm () =
  let init ~n ~id ~degree ~input =
    let st =
      {
        me = input;
        my_id = id;
        degree;
        n;
        nbrs = Array.init degree (fun _ -> { nid = None; ptrs = None; internal = None; status = None });
        round_no = 0;
        my_internal = false;
        my_status = TL.Inconsistent;
        compatible = false;
        defect_port = None;
        relayed = false;
      }
    in
    (st, broadcast st (Hello id))
  in
  let round st ~inbox =
    st.round_no <- st.round_no + 1;
    List.iter
      (fun (port, msg) ->
        let nb = nbr st port in
        match msg with
        | Hello id -> nb.nid <- Some id
        | Pointers t -> nb.ptrs <- Some t
        | Internality b -> nb.internal <- Some b
        | Status s -> nb.status <- Some s
        | Defect ->
            (* record the first defect direction; only child reports count *)
            if st.defect_port = None then st.defect_port <- Some port)
      inbox;
    let deadline = 4 + log2_ceil st.n + 2 in
    let out =
      if st.round_no = 1 then broadcast st (Pointers (my_ptr_ids st))
      else if st.round_no = 2 then begin
        st.my_internal <- compute_internal st;
        broadcast st (Internality st.my_internal)
      end
      else if st.round_no = 3 then begin
        st.my_status <- compute_status st;
        broadcast st (Status st.my_status)
      end
      else if st.round_no = 4 then begin
        st.compatible <- compute_compatible st;
        if (match st.my_status with TL.Inconsistent -> false | TL.Internal | TL.Leaf -> true)
           && not st.compatible
        then defect_announcement st
        else []
      end
      else if st.defect_port <> None && not st.relayed then defect_announcement st
      else []
    in
    let decision = if st.round_no >= deadline then Some (decide st) else None in
    (st, out, decision)
  in
  let message_bits = function
    | Hello _ -> 64
    | Pointers _ -> 5 * 65
    | Internality _ -> 1
    | Status _ -> 2
    | Defect -> 1
  in
  { Congest.init; round; message_bits }

let run inst ?(bandwidth = 512) () =
  let g = inst.BT.graph in
  let deadline = 4 + log2_ceil (Graph.n g) + 4 in
  Congest.run ~graph:g ~input:(BT.input inst) ~bandwidth ~max_rounds:(deadline + 4)
    (algorithm ())
