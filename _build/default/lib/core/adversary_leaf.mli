(** The interactive deterministic-volume adversary for LeafColoring
    (paper Proposition 3.13, "process P").

    The adversary poses as a world claiming to have [n] nodes.  The
    origin looks like the root of a binary tree; every port the
    algorithm probes is answered by growing a fresh, red, internal-
    looking node with three ports.  No leaf is ever revealed.  When a
    deterministic algorithm halts after fewer than [n/3] queries with
    output [c], the adversary completes the explored region into a
    genuine LeafColoring instance by hanging a leaf on every unassigned
    port — and colors all those leaves with the {e other} color.  On the
    completed instance the only valid output at the origin is the other
    color, yet the (deterministic) algorithm, seeing exactly the same
    answers, still outputs [c].  Hence D-VOL(LeafColoring) ≥ n/3.

    {!duel} packages the whole argument as an experiment whose verdict
    is machine-checked: it re-runs the algorithm on the completed
    instance and verifies with the {!Leaf_coloring.problem} checker that
    its answer is invalid. *)

module TL = Vc_graph.Tree_labels

type verdict =
  | Fooled of {
      volume : int;
      instance : Leaf_coloring.instance;
      algorithm_output : TL.color;
      forced_output : TL.color;
    }
      (** The algorithm halted below the query threshold and its output
          is wrong on the completed instance. *)
  | Survived of { volume : int }
      (** The algorithm spent at least the threshold number of queries
          (so the adversary ran out of room); consistent with the Ω(n)
          bound. *)

val pp_verdict : Format.formatter -> verdict -> unit

val world : claimed_n:int -> Leaf_coloring.node_input Vc_model.World.t * (unit -> int)
(** [world ~claimed_n] is the adversarial world plus a function
    reporting how many nodes have been materialized so far.  Node 0 is
    the intended origin.  Usable directly for custom experiments. *)

val complete :
  claimed_n:int ->
  explored_adj:(int * int array) list ->
  inputs:(int * Leaf_coloring.node_input) list ->
  origin_output:TL.color ->
  Leaf_coloring.instance
(** Exposed for testing: build the completed instance from an explored
    region (internal use by {!duel}). *)

val duel :
  claimed_n:int ->
  (Leaf_coloring.node_input, TL.color) Vc_lcl.Lcl.solver ->
  verdict
(** Run a deterministic solver against the adversary from the origin.
    @raise Invalid_argument if the solver is randomized. *)
