test/test_sinkless.ml: Alcotest Array Int64 List Printf String Vc_graph Vc_lcl Vc_model Vc_rng Volcomp
